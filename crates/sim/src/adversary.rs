//! Byzantine adversary strategies.
//!
//! The adversary of Section 2 is *full-knowledge*: it sees every process's
//! state and the whole message pool, controls what corrupted processes
//! send (including per-recipient equivocation), and during asynchronous
//! rounds chooses exactly which available messages each process receives.
//! It cannot forge signatures, so it can only author messages under the
//! keypairs of corrupted processes.
//!
//! Strategies provided:
//!
//! * [`SilentAdversary`] — corrupted processes send nothing; asynchronous
//!   rounds deliver everything (pure crash-style worst case for progress).
//! * [`BlackoutAdversary`] — delivers *nothing* during asynchronous rounds
//!   (maximal message delay).
//! * [`EquivocatingVoter`] — corrupted processes vote for two conflicting
//!   fabricated logs, split across the honest processes, every round.
//! * [`PartitionAttacker`] — the Section-1 safety attack realised as a
//!   network partition during the asynchronous window: each half of the
//!   processes sees only its own half's messages, diverges onto a
//!   conflicting chain and decides it. Breaks vanilla MMR (`η = 0`) with
//!   a 3–4 round window; Theorem 2 says it must fail against `η > π`. Its
//!   blackout variant first waits out the expiration period, defeating
//!   `η ≤ π` configurations and showing the bound is meaningful.
//! * [`ReorgAttacker`] — the strict Definition-5 attack: Byzantine votes
//!   for a chain forking below `D_ra` while honest traffic is suppressed,
//!   making honest processes decide a log conflicting with their own past
//!   decisions. One asynchronous round beats vanilla MMR.

use crate::env::EnvView;
use crate::network::{Recipients, SentMessage};
use crate::schedule::Schedule;
use st_blocktree::{Block, BlockTree};
use st_core::{Protocol, TobConfig, TobProcess};
use st_crypto::Keypair;
use st_messages::{Envelope, Payload, Propose, Vote};
use st_types::{BlockId, ProcessId, Round, TxId, View};

/// A message authored by the adversary, with explicit addressing.
#[derive(Clone, Debug)]
pub struct TargetedMessage {
    /// The signed message (must be signed by a corrupted process's key).
    pub envelope: Envelope,
    /// Who receives it.
    pub recipients: Recipients,
}

/// Everything the adversary can see when acting: full knowledge of the
/// execution (Section 2.3's adversary controls corrupted processes and,
/// during asynchrony, message delivery).
///
/// Generic over the [`Protocol`] under attack; the default is the
/// sleepy protocol's [`TobProcess`], so existing strategies read (and
/// are written) exactly as before.
pub struct AdversaryCtx<'a, P: Protocol = TobProcess> {
    /// The current round.
    pub round: Round,
    /// The environment at this round: current segment kind, offsets
    /// within the current window, remaining window budget and partition
    /// overlay. Replaces the bare `is_async` flag — window-relative
    /// strategies (blackout prefixes, scripted plays) read the offsets
    /// here and automatically re-arm on every new window.
    pub env: EnvView,
    /// The processes corrupted at this round (`B_r`).
    pub corrupted: &'a [ProcessId],
    /// Keypairs of **corrupted** processes (index-aligned with
    /// `corrupted`): the only keys the adversary may sign with.
    pub keypairs: &'a [Keypair],
    /// Read-only view of every process's state (full knowledge).
    pub processes: &'a [P],
    /// The participation schedule.
    pub schedule: &'a Schedule,
    /// A tree absorbing every block ever proposed (global knowledge).
    pub global_tree: &'a BlockTree,
    /// The shared protocol configuration.
    pub config: &'a TobConfig,
}

impl<P: Protocol> AdversaryCtx<'_, P> {
    /// Whether the current round is adversary-scheduled asynchrony.
    pub fn is_async(&self) -> bool {
        self.env.is_async()
    }

    /// The keypair of corrupted process `p`, if it is corrupted.
    pub fn keypair_of(&self, p: ProcessId) -> Option<&Keypair> {
        self.corrupted
            .iter()
            .position(|&c| c == p)
            .map(|i| &self.keypairs[i])
    }
}

/// A Byzantine strategy. Both hooks are optional: the default sends
/// nothing and (during asynchrony) delivers everything — i.e. a purely
/// passive adversary.
///
/// Generic over the [`Protocol`] under attack, defaulted to
/// [`TobProcess`]: `impl Adversary for MyStrategy` still targets the
/// sleepy protocol, while protocol-agnostic strategies (pure delivery
/// control, like [`SilentAdversary`] / [`BlackoutAdversary`] /
/// [`PartitionAttacker`]) implement `Adversary<P>` for every `P` and can
/// attack any protocol the runner drives.
pub trait Adversary<P: Protocol = TobProcess> {
    /// Human-readable strategy name (reports and logs).
    fn name(&self) -> &'static str;

    /// Send phase of round `ctx.round`: messages the corrupted processes
    /// multicast or target.
    fn send(&mut self, ctx: &AdversaryCtx<'_, P>) -> Vec<TargetedMessage> {
        let _ = ctx;
        Vec::new()
    }

    /// Receive phase of an **asynchronous** round: choose which of the
    /// `available` messages `receiver` gets (return pool indices; bogus
    /// indices are ignored by the network). The default delivers
    /// everything, i.e. the asynchronous round behaves synchronously.
    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_, P>,
        receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        let _ = (ctx, receiver);
        available.iter().map(|m| m.index).collect()
    }

    /// Receive phase of a **bounded-delay** round: the delay, in rounds
    /// from the send round, that `receiver` experiences for `msg`.
    /// Return `None` (the default) to use the environment's
    /// deterministic per-(message, receiver) delay
    /// ([`crate::env::bounded_delay_of`]); `Some(d)` is clamped to the
    /// segment's `delta` — the network enforces the deadline regardless,
    /// so no strategy can stretch a bounded-delay segment into
    /// unbounded asynchrony.
    fn delay(
        &mut self,
        ctx: &AdversaryCtx<'_, P>,
        receiver: ProcessId,
        msg: &SentMessage,
        delta: u64,
    ) -> Option<u64> {
        let _ = (ctx, receiver, msg, delta);
        None
    }
}

/// Corrupted processes stay silent; asynchrony delivers everything.
/// Equivalent to crash faults — the worst case for *progress* thresholds.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentAdversary;

impl<P: Protocol> Adversary<P> for SilentAdversary {
    fn name(&self) -> &'static str {
        "silent"
    }
}

/// Delivers nothing at all during asynchronous rounds (and sends nothing).
/// The maximal-delay adversary: every message sent in the window arrives
/// only after synchrony resumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlackoutAdversary;

impl<P: Protocol> Adversary<P> for BlackoutAdversary {
    fn name(&self) -> &'static str {
        "blackout"
    }

    fn deliver(
        &mut self,
        _ctx: &AdversaryCtx<'_, P>,
        _receiver: ProcessId,
        _available: &[&SentMessage],
    ) -> Vec<usize> {
        Vec::new()
    }
}

/// Every round, each corrupted process votes for two conflicting
/// fabricated blocks, sending one vote to the lower half of the processes
/// and the other to the upper half; it also disseminates the fabricated
/// blocks so the votes are interpretable. Stresses equivocation discard
/// and the grading thresholds.
#[derive(Clone, Debug, Default)]
pub struct EquivocatingVoter {
    planted: bool,
    fork_a: Option<Block>,
    fork_b: Option<Block>,
}

impl EquivocatingVoter {
    /// Creates the strategy.
    pub fn new() -> EquivocatingVoter {
        EquivocatingVoter::default()
    }
}

impl Adversary for EquivocatingVoter {
    fn name(&self) -> &'static str {
        "equivocating-voter"
    }

    fn send(&mut self, ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        let Some(&leader) = ctx.corrupted.first() else {
            return Vec::new();
        };
        let kp_leader = ctx.keypair_of(leader).expect("leader is corrupted"); // stlint::allow(panic, reason = "leader came out of ctx.corrupted, and keypair_of covers exactly the corrupted set")
        let mut out = Vec::new();

        if !self.planted {
            // Plant two conflicting blocks off genesis, shipped to all so
            // every tree can interpret the equivocating votes.
            let a = Block::build(
                BlockId::GENESIS,
                View::new(1),
                leader,
                vec![TxId::new(u64::MAX)],
            );
            let b = Block::build(
                BlockId::GENESIS,
                View::new(1),
                leader,
                vec![TxId::new(u64::MAX - 1)],
            );
            let (vrf_value, vrf_proof) = kp_leader.vrf_eval(1);
            for block in [&a, &b] {
                let prop = Propose::new(
                    leader,
                    ctx.round,
                    View::new(1),
                    block.clone(),
                    vrf_value,
                    vrf_proof,
                );
                out.push(TargetedMessage {
                    envelope: Envelope::sign(kp_leader, Payload::Propose(prop)),
                    recipients: Recipients::All,
                });
            }
            self.fork_a = Some(a);
            self.fork_b = Some(b);
            self.planted = true;
        }

        let (Some(a), Some(b)) = (&self.fork_a, &self.fork_b) else {
            return out;
        };
        let n = ctx.schedule.n();
        let lower: Vec<ProcessId> = ProcessId::all(n).filter(|p| p.index() < n / 2).collect();
        let upper: Vec<ProcessId> = ProcessId::all(n).filter(|p| p.index() >= n / 2).collect();
        for (i, &byz) in ctx.corrupted.iter().enumerate() {
            let kp = &ctx.keypairs[i];
            let va = Vote::new(byz, ctx.round, a.id());
            let vb = Vote::new(byz, ctx.round, b.id());
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp, Payload::Vote(va)),
                recipients: Recipients::Only(lower.clone()),
            });
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp, Payload::Vote(vb)),
                recipients: Recipients::Only(upper.clone()),
            });
        }
        out
    }
}

/// The Section-1 split-vote safety attack, realised as a **network
/// partition**: during asynchrony, message delivery is under full
/// adversarial control, so the adversary simply splits the processes into
/// two halves (even and odd ids) and delivers each half only its own
/// half's messages. No Byzantine processes are needed.
///
/// Within two views of partitioned delivery the halves diverge: each half
/// sees only its own proposals, elects a different leader, votes
/// unanimously *within the half* for the resulting conflicting chains, and
/// — since vanilla MMR (`η = 0`) tallies only current-round votes — each
/// half perceives unanimity (`m` = half size) and reaches grade 1 on its
/// own chain: conflicting decisions, agreement broken.
///
/// Against the extended protocol with `η > π`, the *other* half's latest
/// pre-partition votes are still unexpired, so every tally perceives
/// `m = n` with only `n/2` support for either chain — below every
/// threshold, and safety holds (Theorem 2; the mechanism is exactly
/// Lemma 2's).
///
/// The optional **blackout prefix** (see [`PartitionAttacker::with_blackout`])
/// delivers *nothing* for the first `b` asynchronous rounds, aging the
/// pre-asynchrony votes past expiry before the partition play begins. With
/// `b ≥ η` and a window long enough for the play (`π ≥ b + 4`), this
/// defeats the extended protocol too — the `π < η` bound of Theorem 2 is
/// not an artifact.
#[derive(Clone, Debug, Default)]
pub struct PartitionAttacker {
    blackout: u64,
}

impl PartitionAttacker {
    /// The pure partition attack (no blackout prefix): breaks `η = 0`
    /// within an asynchronous window of 3–4 rounds.
    pub fn new() -> PartitionAttacker {
        PartitionAttacker::default()
    }

    /// Partition attack preceded by `blackout` rounds of total silence
    /// (to expire pre-asynchrony votes; use `blackout ≥ η`). The prefix
    /// is window-relative: it re-arms at the start of **every**
    /// asynchronous window, so a multi-window timeline is attacked in
    /// full each time (the offset comes from [`EnvView`], replacing a
    /// start-round latch that only ever fired once).
    pub fn with_blackout(blackout: u64) -> PartitionAttacker {
        PartitionAttacker { blackout }
    }

    fn same_half(a: ProcessId, b: ProcessId) -> bool {
        a.index() % 2 == b.index() % 2
    }
}

/// Replays old, *authentic* protocol messages into processes, the way a
/// misbehaving gossip layer (or an attacker echoing recorded traffic)
/// would.
///
/// Signatures make replayed messages pass verification — the defence is
/// the round tag: a replayed vote is keyed by its original round in every
/// store, so re-delivery is a no-op (`InsertOutcome::Duplicate`) and can
/// never resurrect an expired vote into a newer window. This driver
/// exists to *test* that design: a correct implementation shows zero
/// behavioural difference under replay (see the `replay_has_no_effect`
/// integration test).
#[derive(Clone, Debug)]
pub struct ReplayDriver {
    lag: u64,
    replayed_upto: usize,
}

impl ReplayDriver {
    /// Replays messages older than `lag` rounds.
    pub fn new(lag: u64) -> ReplayDriver {
        ReplayDriver {
            lag,
            replayed_upto: 0,
        }
    }

    /// Re-delivers every pool message older than `round − lag` to every
    /// process. Call once per round with the retained message pool
    /// ([`crate::Network::pool`]). Progress is tracked by each message's
    /// **global** [`crate::network::SentMessage::index`], so the driver
    /// keeps working when the network compacts its fully-delivered prefix
    /// away (messages dropped by compaction were, by definition,
    /// delivered to everyone already — exactly what a replay would no-op
    /// against).
    pub fn replay_into(
        &mut self,
        pool: &[crate::network::SentMessage],
        round: Round,
        procs: &mut [st_core::TobProcess],
    ) {
        let cutoff = round.saturating_sub(self.lag);
        for msg in pool {
            if msg.index < self.replayed_upto {
                continue;
            }
            if msg.round >= cutoff {
                break; // pool is round-sorted: nothing older follows
            }
            for p in procs.iter_mut() {
                p.on_receive_shared(&msg.envelope);
            }
            self.replayed_upto = msg.index + 1;
        }
    }
}

/// Corrupted processes vote, every round, for a junk fork off genesis
/// (planted once via a proposal so receivers can interpret the votes).
///
/// This is the worst case for **progress**: junk votes inflate every
/// honest receiver's perceived participation `m` without supporting the
/// canonical chain, raising the absolute support needed for `> 2m/3` —
/// exactly the pressure the adjusted failure ratio `β̃` of Section 2.3
/// accounts for. Used by the Figure-1 boundary experiment.
#[derive(Clone, Debug, Default)]
pub struct JunkVoter {
    junk: Option<Block>,
}

impl JunkVoter {
    /// Creates the strategy.
    pub fn new() -> JunkVoter {
        JunkVoter::default()
    }
}

impl Adversary for JunkVoter {
    fn name(&self) -> &'static str {
        "junk-voter"
    }

    fn send(&mut self, ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        let Some(&leader) = ctx.corrupted.first() else {
            return Vec::new();
        };
        let kp_leader = ctx.keypair_of(leader).expect("leader is corrupted"); // stlint::allow(panic, reason = "leader came out of ctx.corrupted, and keypair_of covers exactly the corrupted set")
        let mut out = Vec::new();
        if self.junk.is_none() {
            let view = View::from_round(ctx.round).next();
            let junk = Block::build(BlockId::GENESIS, view, leader, vec![TxId::new(0x7A6B)]);
            let (vrf_value, vrf_proof) = kp_leader.vrf_eval(view.as_u64());
            let prop = Propose::new(leader, ctx.round, view, junk.clone(), vrf_value, vrf_proof);
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp_leader, Payload::Propose(prop)),
                recipients: Recipients::All,
            });
            self.junk = Some(junk);
        }
        let junk = self.junk.as_ref().expect("planted above"); // stlint::allow(panic, reason = "the is_none branch directly above fills self.junk before this read")
        for (i, &byz) in ctx.corrupted.iter().enumerate() {
            out.push(TargetedMessage {
                envelope: Envelope::sign(
                    &ctx.keypairs[i],
                    Payload::Vote(Vote::new(byz, ctx.round, junk.id())),
                ),
                recipients: Recipients::All,
            });
        }
        out
    }
}

/// Corrupted processes propose valid, canonical-chain-extending blocks —
/// but reveal each proposal to only **half** of the processes.
///
/// Whenever a corrupted proposer holds the highest VRF for a view, the
/// half that saw its proposal votes for it while the other half votes for
/// the best honest proposal: the vote splits, no log reaches grade 1 in
/// `GA_{v,1}`, and the view decides nothing new. This is the classic
/// leader-equivocation liveness attack the MMR analysis prices in — a
/// view makes progress only when an honest proposer wins the VRF — and
/// drives the latency experiment (L1).
#[derive(Clone, Debug, Default)]
pub struct WithholdingLeader;

impl WithholdingLeader {
    /// Creates the strategy.
    pub fn new() -> WithholdingLeader {
        WithholdingLeader
    }
}

impl Adversary for WithholdingLeader {
    fn name(&self) -> &'static str {
        "withholding-leader"
    }

    fn send(&mut self, ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        use st_types::RoundKind;
        // Propose at the same rounds honest proposers do (second round of
        // a view, for the next view).
        let RoundKind::ViewSecond(view) = RoundKind::of(ctx.round) else {
            return Vec::new();
        };
        let next_view = view.next();
        // Extend the canonical chain: the longest vote tip among honest
        // processes (full knowledge).
        let tip = ctx
            .processes
            .iter()
            .map(|p| p.last_vote_tip())
            .max_by_key(|&t| ctx.global_tree.height(t).unwrap_or(0))
            .unwrap_or(BlockId::GENESIS);
        let n = ctx.schedule.n();
        let half: Vec<ProcessId> = ProcessId::all(n).filter(|p| p.index() % 2 == 0).collect();
        let mut out = Vec::new();
        for (i, &byz) in ctx.corrupted.iter().enumerate() {
            let kp = &ctx.keypairs[i];
            let block = Block::build(
                tip,
                next_view,
                byz,
                vec![TxId::new(0xB10C + byz.as_u32() as u64)],
            );
            let (vrf_value, vrf_proof) = kp.vrf_eval(next_view.as_u64());
            let prop = Propose::new(byz, ctx.round, next_view, block, vrf_value, vrf_proof);
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp, Payload::Propose(prop)),
                recipients: Recipients::Only(half.clone()),
            });
        }
        out
    }
}

/// The strict Definition-5 attack: force a decision that **conflicts with
/// `D_ra`**, the logs decided before asynchrony.
///
/// The corrupted processes plant a block `X` forking off **genesis** —
/// below everything decided — then vote for it unanimously every
/// asynchronous round while the adversary suppresses all honest traffic.
/// A receiver's tally then contains its own (latest) vote plus `f`
/// Byzantine votes for `X`: once `f ≥ 3` (and `f` within the allowed
/// failure ratio, so `n ≥ 10` for `β = 1/3`), `X` clears the `> 2m/3`
/// threshold with `m = f + 1` and every honest process *decides a log
/// conflicting with its own earlier decisions*.
///
/// Against vanilla MMR one asynchronous round suffices — exactly the
/// paper's "the adversary sends only votes for b" scenario. Against
/// `η > π` the unexpired honest votes keep `m` large and `X` starves
/// (Theorem 2). The blackout variant first expires those votes, defeating
/// `η ≤ π` configurations.
#[derive(Clone, Debug, Default)]
pub struct ReorgAttacker {
    blackout: u64,
    fork: Option<Block>,
}

impl ReorgAttacker {
    /// Immediate attack (no blackout): breaks vanilla MMR in one
    /// asynchronous round.
    pub fn new() -> ReorgAttacker {
        ReorgAttacker::default()
    }

    /// Attack preceded by `blackout` silent rounds (use `blackout ≥ η` to
    /// defeat an extended protocol with `π` large enough). Like
    /// [`PartitionAttacker::with_blackout`], the prefix is
    /// window-relative and re-arms on every asynchronous window of the
    /// timeline.
    pub fn with_blackout(blackout: u64) -> ReorgAttacker {
        ReorgAttacker {
            blackout,
            fork: None,
        }
    }
}

impl Adversary for ReorgAttacker {
    fn name(&self) -> &'static str {
        "reorg"
    }

    fn send(&mut self, ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        if !ctx.is_async() {
            return Vec::new();
        }
        if ctx.env.offset < self.blackout || ctx.corrupted.is_empty() {
            return Vec::new();
        }
        let leader = ctx.corrupted[0];
        let kp_leader = ctx.keypair_of(leader).expect("leader is corrupted"); // stlint::allow(panic, reason = "leader came out of ctx.corrupted, and keypair_of covers exactly the corrupted set")
        let mut out = Vec::new();
        if self.fork.is_none() {
            // Plant X off genesis: conflicts with every decided log of
            // height ≥ 1.
            let view = View::from_round(ctx.round).next();
            let x = Block::build(BlockId::GENESIS, view, leader, vec![TxId::new(0x5E06)]);
            let (vrf_value, vrf_proof) = kp_leader.vrf_eval(view.as_u64());
            let prop = Propose::new(leader, ctx.round, view, x.clone(), vrf_value, vrf_proof);
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp_leader, Payload::Propose(prop)),
                recipients: Recipients::All,
            });
            self.fork = Some(x);
        }
        let x = self.fork.as_ref().expect("planted above"); // stlint::allow(panic, reason = "the is_none branch directly above fills self.fork before this read")
        for (i, &byz) in ctx.corrupted.iter().enumerate() {
            let kp = &ctx.keypairs[i];
            out.push(TargetedMessage {
                envelope: Envelope::sign(kp, Payload::Vote(Vote::new(byz, ctx.round, x.id()))),
                recipients: Recipients::All,
            });
        }
        out
    }

    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_>,
        _receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        if ctx.env.offset < self.blackout {
            return Vec::new();
        }
        // Only Byzantine traffic (the planted block and the X votes) gets
        // through; honest votes are suppressed for the whole window.
        available
            .iter()
            .filter(|m| ctx.corrupted.contains(&m.sender))
            .map(|m| m.index)
            .collect()
    }
}

impl<P: Protocol> Adversary<P> for PartitionAttacker {
    fn name(&self) -> &'static str {
        "partition-split-vote"
    }

    fn send(&mut self, _ctx: &AdversaryCtx<'_, P>) -> Vec<TargetedMessage> {
        // Pure delivery attack: corrupted processes (if any) stay silent.
        Vec::new()
    }

    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_, P>,
        receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        if ctx.env.offset < self.blackout {
            return Vec::new(); // silence: let old votes expire
        }
        // Partition: only same-half traffic gets through; messages from
        // before the window were already delivered under synchrony.
        available
            .iter()
            .filter(|m| Self::same_half(m.sender, receiver))
            .map(|m| m.index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_passive() {
        struct Nop;
        impl Adversary for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
        }
        // The default `send` returns nothing without needing a ctx (we
        // cannot easily build a ctx here; the runner tests cover it).
        assert_eq!(Nop.name(), "nop");
    }

    #[test]
    fn partition_halves_by_parity() {
        assert!(PartitionAttacker::same_half(
            ProcessId::new(0),
            ProcessId::new(2)
        ));
        assert!(PartitionAttacker::same_half(
            ProcessId::new(1),
            ProcessId::new(3)
        ));
        assert!(!PartitionAttacker::same_half(
            ProcessId::new(0),
            ProcessId::new(1)
        ));
    }

    #[test]
    fn blackout_variant_records_length() {
        let a = PartitionAttacker::with_blackout(5);
        assert_eq!(a.blackout, 5);
        let b = PartitionAttacker::new();
        assert_eq!(b.blackout, 0);
    }
}
