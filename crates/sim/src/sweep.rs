//! The grid sweep driver.
//!
//! Every experiment in this repository has the same shape: a cartesian
//! grid of configurations, one deterministic simulation per cell, and an
//! aggregate over the per-cell [`SimReport`]s. [`Sweep`] makes that shape
//! a library call instead of a hand-rolled loop: it owns the cell list,
//! derives a **deterministic per-cell seed** from the sweep seed and the
//! cell's position (re-running a grid reproduces every cell exactly, and
//! *appending* cells never perturbs existing ones; inserting or
//! reordering shifts positions and thus seeds), and executes cells
//! across scoped worker threads in input order — cells are pure
//! functions of `(cell, seed)`, so parallelism can only change
//! wall-clock, never results.
//!
//! ```
//! use st_sim::{adversary::PartitionAttacker, SimBuilder, Sweep, Timeline};
//! use st_types::{Params, Round};
//!
//! // η × π grid: Theorem 2 says every η > π cell shrugs the attack off.
//! let sweep = Sweep::grid(vec![5u64, 6], vec![2u64, 4]).seed(7);
//! let outcome = sweep.run_reports(|&(eta, pi), seed| {
//!     SimBuilder::new(Params::builder(8).expiration(eta).build().unwrap(), seed)
//!         .horizon(26)
//!         .timeline(Timeline::synchronous().asynchronous(Round::new(10), pi))
//!         .adversary(PartitionAttacker::new())
//!         .build()
//!         .expect("valid cell")
//! });
//! assert_eq!(outcome.len(), 4);
//! assert!(outcome.all_safe() && outcome.all_recovered());
//! ```

use crate::monitor::SimReport;
use crate::runner::Simulation;
use st_core::Protocol;

/// A deterministic cartesian sweep over configuration cells. See the
/// [module docs](self) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Sweep<C> {
    cells: Vec<C>,
    seed: u64,
    sequential: bool,
}

impl<C: Sync> Sweep<C> {
    /// A sweep over an explicit cell list (any iterable).
    pub fn over(cells: impl IntoIterator<Item = C>) -> Sweep<C> {
        Sweep {
            cells: cells.into_iter().collect(),
            seed: 0,
            sequential: false,
        }
    }

    /// Sets the sweep seed every per-cell seed is derived from
    /// (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Sweep<C> {
        self.seed = seed;
        self
    }

    /// Forces cells to run one at a time on the calling thread. Use when
    /// cells measure wall-clock or share a process-global counter (the
    /// scale benchmarks do both); results are identical either way.
    #[must_use]
    pub fn sequential(mut self) -> Sweep<C> {
        self.sequential = true;
        self
    }

    /// The cells, in run order.
    pub fn cells(&self) -> &[C] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The deterministic seed of cell `index`: a SplitMix64 mix of the
    /// sweep seed and the cell index. Stable across runs, machines and
    /// worker counts; position-derived, so appending cells keeps earlier
    /// seeds, while inserting or reordering shifts them.
    pub fn cell_seed(&self, index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0xA076_1D64_78BD_642F);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs `job(cell, cell_seed)` for every cell and returns the outputs
    /// in input order. Parallel across scoped worker threads (striped,
    /// one per core) unless [`Sweep::sequential`] was requested; the job
    /// must be a pure function of its arguments for the determinism
    /// guarantee to mean anything.
    pub fn run<R, F>(&self, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&C, u64) -> R + Sync,
    {
        if self.sequential || self.cells.len() <= 1 {
            return self
                .cells
                .iter()
                .enumerate()
                .map(|(i, c)| job(c, self.cell_seed(i)))
                .collect();
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(self.cells.len());
        let slots: Vec<std::sync::Mutex<Option<R>>> = (0..self.cells.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let cells = &self.cells;
                let job = &job;
                let slots = &slots;
                let sweep = &self;
                scope.spawn(move || {
                    let mut i = w;
                    while i < cells.len() {
                        let out = job(&cells[i], sweep.cell_seed(i));
                        *slots[i].lock().expect("sweep slot poisoned") = Some(out); // stlint::allow(panic, reason = "a poisoned slot means a sibling worker already panicked; propagating is the right response")
                        i += workers;
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("sweep slot poisoned") // stlint::allow(panic, reason = "a poisoned slot means a worker already panicked; propagating is the right response")
                    .expect("sweep cell never ran") // stlint::allow(panic, reason = "the striped loop assigns every index below cells.len() to exactly one worker, so each slot is filled")
            })
            .collect()
    }

    /// Builds one [`Simulation`] per cell, runs them all, and returns the
    /// collected reports with aggregate helpers. Generic over the
    /// [`Protocol`] the cells drive (inferred from the builder closure;
    /// the default [`crate::SimBuilder`] chain pins it to the sleepy
    /// protocol).
    pub fn run_reports<P, F>(&self, build: F) -> SweepReports
    where
        P: Protocol,
        F: Fn(&C, u64) -> Simulation<P> + Sync,
    {
        SweepReports {
            reports: self.run(|cell, seed| build(cell, seed).run()),
        }
    }

    /// Runs the **same cells under the same per-cell seeds** through two
    /// protocols and pairs the outcomes — the head-to-head driver behind
    /// the baseline-comparison experiments. The cell list and per-cell
    /// seeds are shared by construction; schedules, timelines and
    /// adversaries come from the two builder closures, so build both
    /// sides from the same per-cell inputs (as the doctest below does)
    /// if you want every column difference attributable to the protocol
    /// alone.
    ///
    /// ```
    /// use st_core::QuorumProcess;
    /// use st_sim::{Schedule, SimBuilder, Sweep};
    /// use st_types::Params;
    ///
    /// // 50% of processes sleep mid-run: the sleepy protocol keeps
    /// // deciding, the fixed-quorum baseline stalls.
    /// let sweep = Sweep::over(vec![9usize]).seed(3);
    /// let duel = sweep.compare(
    ///     |&n, seed| {
    ///         SimBuilder::new(Params::builder(n).build().unwrap(), seed)
    ///             .horizon(30)
    ///             .schedule(Schedule::mass_sleep(n, 30, 0.5, 8, 24))
    ///             .build()
    ///             .expect("valid cell")
    ///     },
    ///     |&n, seed| {
    ///         SimBuilder::<QuorumProcess>::for_protocol(Params::builder(n).build().unwrap(), seed)
    ///             .horizon(30)
    ///             .schedule(Schedule::mass_sleep(n, 30, 0.5, 8, 24))
    ///             .build()
    ///             .expect("valid cell")
    ///     },
    /// );
    /// assert_eq!(duel.left_protocol, "sleepy-tob");
    /// assert_eq!(duel.right_protocol, "static-quorum");
    /// let (sleepy, quorum) = duel.pair(0);
    /// assert!(sleepy.decisions_total > quorum.decisions_total);
    /// ```
    pub fn compare<PL, PR, FL, FR>(&self, build_left: FL, build_right: FR) -> SweepComparison
    where
        PL: Protocol,
        PR: Protocol,
        FL: Fn(&C, u64) -> Simulation<PL> + Sync,
        FR: Fn(&C, u64) -> Simulation<PR> + Sync,
    {
        SweepComparison {
            left_protocol: PL::protocol_name().to_string(),
            right_protocol: PR::protocol_name().to_string(),
            left: self.run_reports(build_left),
            right: self.run_reports(build_right),
        }
    }
}

impl<A: Clone + Sync, B: Clone + Sync> Sweep<(A, B)> {
    /// The cartesian grid `xs × ys`, row-major (`ys` varies fastest).
    pub fn grid(xs: Vec<A>, ys: Vec<B>) -> Sweep<(A, B)> {
        Sweep::over(
            xs.iter()
                .flat_map(|x| ys.iter().map(move |y| (x.clone(), y.clone())))
                .collect::<Vec<_>>(),
        )
    }
}

impl<A: Clone + Sync, B: Clone + Sync, C: Clone + Sync> Sweep<(A, B, C)> {
    /// The cartesian grid `xs × ys × zs`, row-major (`zs` varies
    /// fastest).
    pub fn grid3(xs: Vec<A>, ys: Vec<B>, zs: Vec<C>) -> Sweep<(A, B, C)> {
        let mut cells = Vec::with_capacity(xs.len() * ys.len() * zs.len());
        for x in &xs {
            for y in &ys {
                for z in &zs {
                    cells.push((x.clone(), y.clone(), z.clone()));
                }
            }
        }
        Sweep::over(cells)
    }
}

/// The reports of a [`Sweep::run_reports`] call, in cell order, with
/// grid-level aggregates.
#[derive(Clone, Debug)]
pub struct SweepReports {
    /// One report per cell, in cell order.
    pub reports: Vec<SimReport>,
}

impl SweepReports {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the sweep had no cells.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Whether every cell preserved agreement (Definition 2).
    pub fn all_safe(&self) -> bool {
        self.reports.iter().all(SimReport::is_safe)
    }

    /// Whether every cell satisfied Definition 5.
    pub fn all_resilient(&self) -> bool {
        self.reports.iter().all(SimReport::is_asynchrony_resilient)
    }

    /// Whether every cell recovered after every disruption window.
    pub fn all_recovered(&self) -> bool {
        self.reports
            .iter()
            .all(SimReport::recovered_after_every_window)
    }

    /// Total decision events across all cells.
    pub fn total_decisions(&self) -> usize {
        self.reports.iter().map(|r| r.decisions_total).sum()
    }

    /// Indices of cells with at least one safety or resilience violation.
    pub fn violating_cells(&self) -> Vec<usize> {
        self.reports
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_safe() || !r.is_asynchrony_resilient())
            .map(|(i, _)| i)
            .collect()
    }

    /// The worst per-window healing lag across all cells, if every cell
    /// with windows healed everywhere.
    pub fn max_recovery_rounds(&self) -> Option<u64> {
        self.reports
            .iter()
            .filter_map(SimReport::max_recovery_rounds)
            .max()
    }
}

/// The paired outcome of a [`Sweep::compare`] call: the same cells and
/// per-cell seeds run under two protocols, reports side by side.
#[derive(Clone, Debug)]
pub struct SweepComparison {
    /// Protocol name of the left column.
    pub left_protocol: String,
    /// Protocol name of the right column.
    pub right_protocol: String,
    /// Left-protocol reports, in cell order.
    pub left: SweepReports,
    /// Right-protocol reports, in cell order.
    pub right: SweepReports,
}

impl SweepComparison {
    /// Number of cells (both columns always have the same length).
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// Whether the comparison had no cells.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// The `(left, right)` report pair of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn pair(&self, index: usize) -> (&SimReport, &SimReport) {
        (&self.left.reports[index], &self.right.reports[index])
    }

    /// Iterates cell pairs in cell order.
    pub fn pairs(&self) -> impl Iterator<Item = (&SimReport, &SimReport)> {
        self.left.reports.iter().zip(self.right.reports.iter())
    }

    /// Per-cell decision-count advantage of the left protocol
    /// (`left.decisions_total − right.decisions_total`).
    pub fn decision_advantage(&self) -> Vec<i64> {
        self.pairs()
            .map(|(l, r)| l.decisions_total as i64 - r.decisions_total as i64)
            .collect()
    }

    /// Indices of cells where the predicate holds for the `(left,
    /// right)` report pair — the building block for head-to-head gates
    /// ("every cell where the baseline stalled but the sleepy protocol
    /// decided").
    pub fn cells_where(&self, pred: impl Fn(&SimReport, &SimReport) -> bool) -> Vec<usize> {
        // stlint::allow(deadpub, reason = "the generic predicate behind the head-to-head gates; comparative suites phrase new gates with it without growing this struct")
        self.pairs()
            .enumerate()
            .filter(|(_, (l, r))| pred(l, r))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SilentAdversary;
    use crate::builder::SimBuilder;
    use st_types::Params;

    #[test]
    fn grid_is_row_major_and_sized() {
        let s = Sweep::grid(vec![1u64, 2], vec!["a", "b", "c"]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.cells()[0], (1, "a"));
        assert_eq!(s.cells()[2], (1, "c"));
        assert_eq!(s.cells()[3], (2, "a"));
        let s3 = Sweep::grid3(vec![1u8], vec![2u8, 3], vec![4u8]);
        assert_eq!(s3.cells(), &[(1, 2, 4), (1, 3, 4)]);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_spread() {
        let s = Sweep::over(0..16u32).seed(42);
        let seeds: Vec<u64> = (0..16).map(|i| s.cell_seed(i)).collect();
        assert_eq!(seeds, (0..16).map(|i| s.cell_seed(i)).collect::<Vec<_>>());
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len(), "cell seeds collide");
        // A different sweep seed moves every cell seed.
        let other = Sweep::over(0..16u32).seed(43);
        assert!((0..16).all(|i| s.cell_seed(i) != other.cell_seed(i)));
    }

    #[test]
    fn parallel_and_sequential_agree_in_input_order() {
        let s = Sweep::over(0..23u64).seed(9);
        let par = s.run(|&c, seed| (c, seed));
        let seq = s.clone().sequential().run(|&c, seed| (c, seed));
        assert_eq!(par, seq);
        assert_eq!(par[5].0, 5);
        // Empty sweeps are fine.
        assert!(Sweep::over(Vec::<u64>::new()).run(|&c, _| c).is_empty());
    }

    #[test]
    fn run_reports_aggregates() {
        let outcome = Sweep::grid(vec![4usize, 6], vec![12u64, 16]).run_reports(|&(n, h), seed| {
            SimBuilder::new(Params::builder(n).expiration(2).build().unwrap(), seed)
                .horizon(h)
                .adversary(SilentAdversary)
                .build()
                .expect("valid cell")
        });
        assert_eq!(outcome.len(), 4);
        assert!(outcome.all_safe());
        assert!(outcome.all_resilient());
        assert!(outcome.all_recovered()); // vacuous: no windows
        assert!(outcome.total_decisions() > 0);
        assert!(outcome.violating_cells().is_empty());
        assert_eq!(outcome.max_recovery_rounds(), None);
    }
}
