//! The workload layer threaded into the round loop: open-loop
//! generators feeding a bounded mempool feeding `submit_tx`, with
//! submit→decide latency accounting on the way out.
//!
//! Three pieces cooperate, split along the runner's mutability seam:
//!
//! * [`WorkloadSpec`] + the crate-internal injector own the **write**
//!   side. Observers see processes read-only by design (the
//!   [`crate::ObsCtx`] contract), so the one place that must call
//!   `submit_tx` is a small runner-held injector invoked at the exact
//!   point the legacy `txs_every` knob fired: per round it asks the
//!   [`Workload`] for arrivals, offers them to the [`Mempool`], and —
//!   when an honest proposer is awake — drains a batch for submission.
//! * [`WorkloadObserver`] owns the **accounting** side: it shares the
//!   injector's mempool handle (the `DecisionTap` idiom) and publishes
//!   admission/drop/occupancy statistics into
//!   [`SimReport::workload`](crate::SimReport).
//! * [`LatencyObserver`] owns the **join**: each drained transaction's
//!   `TxSubmitted` event carries its mempool *arrival* round (not the
//!   drain round), so the tx ledger's `decided_round` minus `submitted`
//!   is the full client-observed latency — queueing delay included,
//!   which is what makes saturation knees visible in the percentiles.
//!
//! The legacy `txs_every(k)` knob is re-expressed as a
//! [`WorkloadSpec::legacy_shim`] over `ConstantRate::every(k)` with
//! unbounded admission, unbounded batch, and drop-when-asleep semantics;
//! the determinism-equivalence suite asserts the two paths produce
//! byte-identical reports.

use crate::monitor::SimReport;
use crate::observer::{ObsCtx, Observer};
use crate::schedule::Schedule;
use serde::Serialize;
use st_core::Protocol;
use st_load::{Histogram, Mempool, PendingTx, Workload};
use std::cell::RefCell;
use std::rc::Rc;

/// Default mempool capacity when none is configured.
pub const DEFAULT_MEMPOOL_CAPACITY: usize = 1024;
/// Default per-round submission batch when none is configured.
pub const DEFAULT_BATCH: usize = 8;

/// A configured workload: the generator plus the mempool's admission and
/// service parameters. Hand it to
/// [`SimBuilder::workload`](crate::SimBuilder::workload) (which builds
/// one with the defaults) or construct explicitly for custom
/// capacity/batch.
pub struct WorkloadSpec {
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) capacity: usize,
    pub(crate) batch: usize,
    /// Legacy `txs_every` semantics: an arrival in a round where no
    /// honest process is awake is dropped on the floor (the transaction
    /// never existed) instead of queueing. Only the shim sets this.
    pub(crate) legacy_drop: bool,
}

impl WorkloadSpec {
    /// A spec over `workload` with the default mempool capacity
    /// ([`DEFAULT_MEMPOOL_CAPACITY`]) and batch ([`DEFAULT_BATCH`]).
    pub fn new(workload: impl Workload + 'static) -> WorkloadSpec {
        WorkloadSpec {
            workload: Box::new(workload),
            capacity: DEFAULT_MEMPOOL_CAPACITY,
            batch: DEFAULT_BATCH,
            legacy_drop: false,
        }
    }

    /// Sets the mempool capacity cap.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> WorkloadSpec {
        self.capacity = capacity;
        self
    }

    /// Sets the per-round submission batch (the service rate: at most
    /// this many queued transactions reach `submit_tx` per round with an
    /// awake honest proposer).
    #[must_use]
    pub fn batch(mut self, batch: usize) -> WorkloadSpec {
        self.batch = batch.max(1);
        self
    }

    /// The spec that reproduces `txs_every(k)` exactly: one arrival at
    /// every round divisible by `k`, no admission or batch limits, and
    /// arrivals offered while every honest process sleeps are dropped
    /// (never queued) — the legacy knob's behaviour to the byte.
    pub(crate) fn legacy_shim(k: u64) -> WorkloadSpec {
        WorkloadSpec {
            workload: Box::new(st_load::ConstantRate::every(k)),
            capacity: usize::MAX,
            batch: usize::MAX,
            legacy_drop: true,
        }
    }
}

/// The runner-held write seam: turns per-round arrivals into admitted
/// mempool entries and drains the submission batch. Shares its mempool
/// with the [`WorkloadObserver`] through an `Rc<RefCell<…>>` handle.
pub(crate) struct WorkloadInjector {
    spec: WorkloadSpec,
    mempool: Rc<RefCell<Mempool>>,
}

impl WorkloadInjector {
    pub(crate) fn new(spec: WorkloadSpec) -> WorkloadInjector {
        let mempool = Rc::new(RefCell::new(Mempool::new(
            spec.capacity,
            spec.workload.clients(),
        )));
        WorkloadInjector { spec, mempool }
    }

    /// The observers wired to this injector's mempool, in the order they
    /// should run (accounting before the latency join).
    pub(crate) fn observers<P: Protocol>(&self) -> Vec<Box<dyn Observer<P>>> {
        vec![
            Box::new(WorkloadObserver {
                mempool: Rc::clone(&self.mempool),
                generator: self.spec.workload.name().to_string(),
                clients: self.spec.workload.clients(),
            }),
            Box::new(LatencyObserver::new()),
        ]
    }

    /// Runs one round of the workload: offers this round's arrivals,
    /// then — if an honest proposer is awake — drains the submission
    /// batch (each entry still carrying its *arrival* round). With no
    /// awake proposer the queue holds over, except under legacy
    /// semantics where the arrivals are dropped outright.
    pub(crate) fn step(&mut self, round: u64, proposer_awake: bool) -> Vec<PendingTx> {
        let mut mempool = self.mempool.borrow_mut();
        for client in 0..self.spec.workload.clients() {
            for _ in 0..self.spec.workload.arrivals(round, client) {
                if self.spec.legacy_drop && !proposer_awake {
                    mempool.note_asleep_drop();
                } else {
                    mempool.offer(client, round);
                }
            }
        }
        if proposer_awake {
            mempool.drain(self.spec.batch)
        } else {
            mempool.hold_over();
            Vec::new()
        }
    }
}

/// Workload accounting in one [`SimReport`](crate::SimReport), filled by
/// the workload observers at finish. All counters are zero / `None` on
/// runs without a configured workload.
#[derive(Clone, Debug, Default, Serialize)]
pub struct WorkloadSummary {
    /// Generator name (`"constant-rate"`, `"flash-crowd"`, `"diurnal"`);
    /// empty without a workload.
    pub generator: String,
    /// Number of traffic-generating clients.
    pub clients: usize,
    /// Transactions the generator offered.
    pub offered: u64,
    /// Transactions admitted to the mempool.
    pub admitted: u64,
    /// Admission drops: queue at capacity.
    pub dropped_capacity: u64,
    /// Admission drops: client over its fairness cap.
    pub dropped_fairness: u64,
    /// Arrivals dropped because no honest process was awake (legacy
    /// `txs_every` semantics only).
    pub dropped_asleep: u64,
    /// Queue-rounds spent waiting through proposer-less rounds.
    pub held_over: u64,
    /// Transactions drained into `submit_tx`.
    pub submitted: u64,
    /// Transactions still queued at the end of the run.
    pub backlog: u64,
    /// Mempool occupancy high-water mark.
    pub mempool_high_water: usize,
    /// Dropped fraction of offered load (all drop causes combined).
    pub drop_rate: f64,
    /// Submitted transactions that reached some honest decided log.
    pub decided: u64,
    /// Decided transactions per executed round.
    pub throughput: f64,
    /// Exact submit→decide round-latency percentiles (mempool arrival to
    /// first honest decided log), `None` when nothing decided.
    pub latency_p50: Option<u64>,
    /// 90th percentile of the same distribution.
    pub latency_p90: Option<u64>,
    /// 99th percentile of the same distribution.
    pub latency_p99: Option<u64>,
    /// Mean of the same distribution.
    pub latency_mean: Option<f64>,
}

/// Publishes the mempool's admission/drop/occupancy accounting into
/// [`SimReport::workload`](crate::SimReport) — the read half of the
/// injector, riding the observer pipeline.
pub struct WorkloadObserver {
    mempool: Rc<RefCell<Mempool>>,
    generator: String,
    clients: usize,
}

impl<P: Protocol> Observer<P> for WorkloadObserver {
    fn name(&self) -> &str {
        "workload-mempool"
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        let mempool = self.mempool.borrow();
        let stats = mempool.stats();
        let w = &mut report.workload;
        w.generator = self.generator.clone();
        w.clients = self.clients;
        w.offered = stats.offered;
        w.admitted = stats.admitted;
        w.dropped_capacity = stats.dropped_capacity;
        w.dropped_fairness = stats.dropped_fairness;
        w.dropped_asleep = stats.dropped_asleep;
        w.held_over = stats.held_over;
        w.submitted = stats.drained;
        w.backlog = mempool.len() as u64;
        w.mempool_high_water = stats.high_water;
        let dropped = stats.dropped_capacity + stats.dropped_fairness + stats.dropped_asleep;
        w.drop_rate = if stats.offered > 0 {
            dropped as f64 / stats.offered as f64
        } else {
            0.0
        };
    }
}

/// Joins submit rounds against decided rounds into exact submit→decide
/// latency percentiles. Runs after the built-in tx ledger (which fills
/// [`crate::TxRecord::decided_round`]), so its `finish` is a pure
/// post-processing pass over `report.txs`.
#[derive(Default)]
pub struct LatencyObserver {
    _private: (),
}

impl LatencyObserver {
    /// A latency observer (stateless until `finish`).
    pub fn new() -> LatencyObserver {
        LatencyObserver::default()
    }
}

impl<P: Protocol> Observer<P> for LatencyObserver {
    fn name(&self) -> &str {
        "workload-latency"
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        let mut histogram = Histogram::new();
        for rec in &report.txs {
            if let Some(decided) = rec.decided_round {
                histogram.record(decided - rec.submitted.as_u64());
            }
        }
        let stats = histogram.stats();
        let w = &mut report.workload;
        w.decided = stats.count;
        w.throughput = stats.count as f64 / (report.rounds_run + 1) as f64;
        w.latency_p50 = stats.p50;
        w.latency_p90 = stats.p90;
        w.latency_p99 = stats.p99;
        w.latency_mean = stats.mean;
    }
}

/// Derives a participation [`Schedule`] from a workload's
/// [`Workload::load_fraction`] trace: at every round the awake fraction
/// equals the offered-load fraction (at least one process always awake).
/// For [`st_load::Diurnal`] the cosine matches `Schedule::oscillating`'s
/// formula exactly, so "users asleep at night are users not submitting"
/// holds by construction — workload and participation come from the
/// *same* trace instead of two knobs that drift apart.
pub fn diurnal_schedule(workload: &dyn Workload, n: usize, horizon: u64) -> Schedule {
    let awake = (0..=horizon)
        .map(|r| {
            let frac = workload.load_fraction(r).clamp(0.0, 1.0);
            let awake_count = ((n as f64) * frac).round().max(1.0) as usize;
            (0..n).map(|p| p < awake_count).collect()
        })
        .collect();
    Schedule::custom(awake)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_load::{ConstantRate, Diurnal};

    #[test]
    fn injector_offers_and_drains_with_batch_cap() {
        let mut inj = WorkloadInjector::new(WorkloadSpec::new(ConstantRate::per_round(5)).batch(2));
        assert!(inj.step(0, true).is_empty(), "round 0 offers nothing");
        let batch = inj.step(1, true);
        assert_eq!(batch.len(), 2, "batch caps the drain");
        assert!(batch.iter().all(|p| p.arrived == 1));
        // The 3 leftovers queue; round 2 drains 2 of the oldest.
        let batch = inj.step(2, true);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|p| p.arrived == 1), "FIFO: oldest first");
    }

    #[test]
    fn injector_holds_over_without_a_proposer_and_legacy_drops() {
        // Real workloads queue through proposer-less rounds…
        let mut inj = WorkloadInjector::new(WorkloadSpec::new(ConstantRate::per_round(1)));
        assert!(inj.step(1, false).is_empty());
        let batch = inj.step(2, true);
        assert_eq!(batch.len(), 2, "held-over arrival drains later");
        assert_eq!(
            batch[0].arrived, 1,
            "arrival round preserved across hold-over"
        );
        // …the legacy shim drops them outright.
        let mut shim = WorkloadInjector::new(WorkloadSpec::legacy_shim(1));
        assert!(shim.step(1, false).is_empty());
        let batch = shim.step(2, true);
        assert_eq!(
            batch.len(),
            1,
            "legacy arrival offered to an empty room never existed"
        );
        assert_eq!(shim.mempool.borrow().stats().dropped_asleep, 1);
    }

    #[test]
    fn legacy_shim_matches_txs_every_trace() {
        let mut shim = WorkloadInjector::new(WorkloadSpec::legacy_shim(4));
        for r in 0..=16 {
            let batch = shim.step(r, true);
            let expect = usize::from(r > 0 && r % 4 == 0);
            assert_eq!(batch.len(), expect, "round {r}");
            if let Some(p) = batch.first() {
                assert_eq!(p.arrived, r, "shim arrivals drain the round they arrive");
            }
        }
    }

    #[test]
    fn diurnal_schedule_tracks_the_load_trace() {
        let w = Diurnal::new(10, 0.25, 8);
        let schedule = diurnal_schedule(&w, 8, 16);
        assert_eq!(schedule.n(), 8);
        // Peak (phase 0): everyone awake. Trough (half period): 8·0.25 = 2.
        assert_eq!(schedule.honest_awake(st_types::Round::new(8)).len(), 8);
        assert_eq!(schedule.honest_awake(st_types::Round::new(4)).len(), 2);
        // Matches Schedule::oscillating on the same parameters.
        let osc = Schedule::oscillating(8, 16, 0.25, 8);
        for r in 0..=16 {
            let round = st_types::Round::new(r);
            assert_eq!(
                schedule.honest_awake(round),
                osc.honest_awake(round),
                "round {r}"
            );
        }
    }

    #[test]
    fn flat_workload_derives_a_full_schedule() {
        let w = ConstantRate::per_round(3);
        let schedule = diurnal_schedule(&w, 5, 6);
        for r in 0..=6 {
            assert_eq!(schedule.honest_awake(st_types::Round::new(r)).len(), 5);
        }
    }
}
