//! Invariant monitors and the simulation report.
//!
//! Monitors observe the execution from outside (they see every process's
//! decisions and a global block tree) and check the paper's definitions:
//!
//! * **Safety** (Definition 2): all decided logs of well-behaved processes
//!   are pairwise compatible;
//! * **Asynchrony resilience** (Definition 5): no decision during or after
//!   the asynchronous window conflicts with `D_ra`, the set of logs
//!   decided up to the last synchronous round `ra`;
//! * **Liveness** (Definition 2): every submitted transaction eventually
//!   appears in every awake process's decided log, with latency recorded;
//! * **Healing** (Definition 6): after the window closes, how many rounds
//!   pass before decisions resume.

use serde::{Serialize, Value};
use st_blocktree::BlockTree;
use st_core::DecisionEvent;
use st_types::{BlockId, ProcessId, Round, TxId};

/// A pair of conflicting decisions observed by the safety monitor.
#[derive(Clone, Debug, Serialize)]
pub struct SafetyViolation {
    /// The earlier decision.
    pub first: (ProcessId, DecisionEvent),
    /// The decision that conflicts with it.
    pub second: (ProcessId, DecisionEvent),
}

/// Lifecycle of a submitted transaction.
#[derive(Clone, Debug)]
pub struct TxRecord {
    /// The transaction.
    pub tx: TxId,
    /// The round it was submitted in (with a workload configured: the
    /// round it arrived at the mempool, so downstream latencies include
    /// queueing delay).
    pub submitted: Round,
    /// First round at which *every* process awake at that round had the
    /// transaction in its decided log; `None` if that never happened.
    pub included_everywhere: Option<Round>,
    /// First round at which *some* honest awake process had the
    /// transaction in its decided log — the client-observed decision
    /// point ("when did my tx land"); `None` if it never landed.
    pub decided_round: Option<u64>,
}

// Hand-written rather than derived: `decided_round` is serialized only
// when present, and the in-repo serde stand-in has no skip attributes.
// The first three entries match the shape the derive produced before the
// field existed, so legacy report consumers see unchanged records.
impl Serialize for TxRecord {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("tx".to_string(), self.tx.to_value()),
            ("submitted".to_string(), self.submitted.to_value()),
            (
                "included_everywhere".to_string(),
                self.included_everywhere.to_value(),
            ),
        ];
        if let Some(d) = self.decided_round {
            entries.push(("decided_round".to_string(), d.to_value()));
        }
        Value::Map(entries)
    }
}

impl TxRecord {
    /// Inclusion latency in rounds, if included.
    pub fn latency(&self) -> Option<u64> {
        self.included_everywhere
            .map(|r| r.as_u64() - self.submitted.as_u64())
    }

    /// Submit→decide latency in rounds (first honest decided log), if
    /// the transaction ever landed.
    pub fn decide_latency(&self) -> Option<u64> {
        self.decided_round.map(|r| r - self.submitted.as_u64())
    }
}

/// Per-disruption recovery bookkeeping: one record for **every** window
/// and partition event of the configured [`crate::Timeline`], in start
/// order. This is the paper's "recovers after every asynchronous spell"
/// claim made quantitative — a multi-window run must show a decision
/// after each window, not just after the last one.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryRecord {
    /// `"async"`, `"bounded-delay"` or `"partition"`.
    pub kind: String,
    /// First disrupted round.
    pub start: Round,
    /// Last disrupted round.
    pub end: Round,
    /// First decision round strictly after the window, if any.
    pub first_decision_after: Option<Round>,
    /// `first_decision_after − end` — the healing lag of this spell
    /// (Definition 6's `k` per window).
    pub recovery_rounds: Option<u64>,
    /// Definition-5 violations against this window's `D_ra` (decisions
    /// conflicting with the logs decided before the spell began).
    pub violations: usize,
}

/// The outcome of a simulation run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SimReport {
    /// Strategy name of the adversary that ran.
    pub adversary: String,
    /// Rounds executed (0..=rounds_run).
    pub rounds_run: u64,
    /// Total decision events across all honest processes.
    pub decisions_total: usize,
    /// Decision events per process.
    pub per_process_decisions: Vec<usize>,
    /// Conflicting decision pairs (agreement violations).
    pub safety_violations: Vec<SafetyViolation>,
    /// Decisions conflicting with some disruption window's `D_ra`
    /// (Definition 5 violations), concatenated over the timeline's
    /// windows in start order. Empty for fully-synchronous timelines.
    pub resilience_violations: Vec<SafetyViolation>,
    /// Transaction lifecycle records.
    pub txs: Vec<TxRecord>,
    /// Height of the longest decided log at the end of the run.
    pub final_decided_height: u64,
    /// Total messages that entered the network.
    pub messages_sent: usize,
    /// Round of the first decision strictly after the **last** disruption
    /// window, if any window was configured.
    ///
    /// **Deprecated:** this singular field describes only the final spell
    /// of a multi-window timeline. Read the per-window
    /// [`SimReport::recoveries`] records (each carries its own
    /// `first_decision_after`) instead.
    #[deprecated(
        since = "0.5.0",
        note = "read the per-window `recoveries` records (each has `first_decision_after`)"
    )]
    pub first_decision_after_async: Option<Round>,
    /// The last round of the final disruption window, if any was
    /// configured.
    ///
    /// **Deprecated:** singular last-spell view; the per-window
    /// [`SimReport::recoveries`] records carry each window's `end`.
    #[deprecated(
        since = "0.5.0",
        note = "read the per-window `recoveries` records (each has `end`)"
    )]
    pub async_window_end: Option<Round>,
    /// Per-disruption recovery records, in window start order (one per
    /// async/bounded-delay/partition window of the timeline).
    pub recoveries: Vec<RecoveryRecord>,
    /// Rounds in which at least one process decided.
    pub deciding_rounds: usize,
    /// Per-round time series of the execution.
    pub timeline: crate::RoundTrace,
    /// Workload/mempool/latency accounting (all zero without a
    /// configured workload).
    pub workload: crate::workload::WorkloadSummary,
}

impl SimReport {
    /// Whether the run preserved agreement.
    pub fn is_safe(&self) -> bool {
        self.safety_violations.is_empty()
    }

    /// Whether the run satisfied Definition 5 w.r.t. the configured
    /// window (vacuously true without a window).
    pub fn is_asynchrony_resilient(&self) -> bool {
        self.resilience_violations.is_empty()
    }

    /// Healing lag `k`: rounds from the end of the **last** disruption
    /// window to the first subsequent decision (Definition 6/Theorem 3).
    /// `None` if no window was configured or no decision followed.
    ///
    /// **Deprecated:** the singular lag describes only the final spell.
    /// Use [`SimReport::max_recovery_rounds`] (worst spell) or the
    /// per-window `recovery_rounds` in [`SimReport::recoveries`].
    #[deprecated(
        since = "0.5.0",
        note = "use `max_recovery_rounds()` or the per-window `recovery_rounds` in `recoveries`"
    )]
    pub fn healing_lag(&self) -> Option<u64> {
        #[allow(deprecated)]
        match (self.async_window_end, self.first_decision_after_async) {
            (Some(end), Some(first)) => Some(first.as_u64().saturating_sub(end.as_u64())),
            _ => None,
        }
    }

    /// Whether a decision followed **every** disruption window — the
    /// multi-spell form of the paper's resilience claim (vacuously true
    /// without windows).
    pub fn recovered_after_every_window(&self) -> bool {
        self.recoveries
            .iter()
            .all(|r| r.first_decision_after.is_some())
    }

    /// The worst per-window healing lag across the run, if every window
    /// healed.
    pub fn max_recovery_rounds(&self) -> Option<u64> {
        if self.recoveries.is_empty() || !self.recovered_after_every_window() {
            return None;
        }
        self.recoveries
            .iter()
            .filter_map(|r| r.recovery_rounds)
            .max()
    }

    /// Agreement violations in which **neither** decision is orphanable —
    /// what safety Theorem 3's proof actually forbids. A decision is
    /// *orphanable* when its round lies inside some disruption window or
    /// in that window's first post-window round (`[start, end + 1]` of
    /// any entry in [`SimReport::recoveries`]): it may have been made on
    /// evidence the rest of the network never saw and later superseded,
    /// which Definition 5 explicitly declines to protect (such decisions
    /// are not in `D_ra`) — see EXPERIMENTS.md. The per-window test
    /// matters for multi-window timelines: a conflict decided entirely in
    /// the synchronous gap *between* two spells involves no orphanable
    /// decision and is a genuine violation, not an orphaning. Every
    /// disruption kind counts as an orphanable zone, including
    /// bounded-delay windows (a `Δ`-bounded form of asynchrony — under
    /// `η ≤ Δ`, in-spell decisions can rest on evidence whose peers'
    /// votes are still in flight exactly as under full asynchrony);
    /// assertions that safety holds *through* a bounded period should
    /// check [`SimReport::is_safe`], which counts every violation
    /// regardless of classification.
    pub fn post_window_violations(&self) -> Vec<&SafetyViolation> {
        let orphanable = |r: Round| {
            self.recoveries
                .iter()
                .any(|w| w.start <= r && r.as_u64() <= w.end.as_u64() + 1)
        };
        self.safety_violations
            .iter()
            .filter(|v| !orphanable(v.first.1.round) && !orphanable(v.second.1.round))
            .collect()
    }

    /// Agreement violations involving at least one decision made inside
    /// some disruption window or in its first post-window round (the
    /// orphanable ones). Complements
    /// [`SimReport::post_window_violations`].
    pub fn in_window_orphanings(&self) -> usize {
        self.safety_violations.len() - self.post_window_violations().len()
    }

    /// Fraction of submitted transactions that were included everywhere.
    pub fn tx_inclusion_rate(&self) -> f64 {
        if self.txs.is_empty() {
            return 1.0;
        }
        self.txs
            .iter()
            .filter(|t| t.included_everywhere.is_some())
            .count() as f64
            / self.txs.len() as f64
    }

    /// Mean transaction inclusion latency in rounds (over included txs).
    pub fn mean_tx_latency(&self) -> Option<f64> {
        let lats: Vec<u64> = self.txs.iter().filter_map(TxRecord::latency).collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<u64>() as f64 / lats.len() as f64)
        }
    }
}

/// Tracks decisions and checks agreement incrementally.
///
/// Rather than comparing every new decision against all previous ones
/// (quadratic), the monitor maintains the set of *maximal* decided tips:
/// a new decision only needs compatibility checks against those. The
/// frontier keeps conflicting branches side by side, so entries are
/// pairwise incomparable (no entry is an ancestor of another).
#[derive(Clone, Debug, Default)]
pub(crate) struct SafetyMonitor {
    /// Maximal decided tips with a witness decision each.
    frontier: Vec<(BlockId, ProcessId, DecisionEvent)>,
    /// Conflicting `(process, tip)` pairs already recorded, order-
    /// normalised, mapped to their entry in `violations` — the same pair
    /// of conflicting logs is reported once, not once per re-decision of
    /// either side.
    recorded: st_types::FastMap<(u32, u64, u32, u64), usize>,
    pub(crate) violations: Vec<SafetyViolation>,
}

impl SafetyMonitor {
    pub(crate) fn new() -> SafetyMonitor {
        SafetyMonitor::default()
    }

    /// Records a decision, checking it against the **whole** frontier.
    ///
    /// Every frontier entry is examined before anything is concluded: with
    /// a forked frontier, a new tip can simultaneously extend one branch
    /// and conflict with another, so returning early on the first
    /// "already covered" entry would make the violation count depend on
    /// frontier insertion order.
    pub(crate) fn observe(&mut self, tree: &BlockTree, who: ProcessId, event: DecisionEvent) {
        let tip = event.tip;
        let mut superseded = Vec::new();
        let mut covered = false;
        for (i, (frontier_tip, fp, fe)) in self.frontier.iter().enumerate() {
            if tree.is_ancestor(*frontier_tip, tip) {
                superseded.push(i);
            } else if tree.is_ancestor(tip, *frontier_tip) {
                // Covered by a longer decided log on this branch — but
                // keep scanning: other branches may still conflict.
                covered = true;
            } else {
                let key = Self::pair_key((*fp, fe.tip), (who, tip));
                let occurrence = SafetyViolation {
                    first: (*fp, *fe),
                    second: (who, event),
                };
                match self.recorded.get(&key) {
                    None => {
                        self.recorded.insert(key, self.violations.len());
                        self.violations.push(occurrence);
                    }
                    Some(&i) => {
                        // Same pair, later re-decisions: keep the witness
                        // whose *earlier* decision is latest. Downstream
                        // classification (post-window vs in-window, see
                        // `SimReport::post_window_violations`) looks at
                        // the witness rounds, so a pair that re-conflicts
                        // entirely after the asynchronous window must not
                        // hide behind its first, in-window occurrence.
                        let stored = &self.violations[i];
                        let stored_min = stored.first.1.round.min(stored.second.1.round);
                        let new_min = occurrence.first.1.round.min(occurrence.second.1.round);
                        if new_min > stored_min {
                            self.violations[i] = occurrence;
                        }
                    }
                }
                // Keep both in the frontier so later decisions are judged
                // against both branches.
            }
        }
        for &i in superseded.iter().rev() {
            self.frontier.remove(i);
        }
        if !covered {
            self.frontier.push((tip, who, event));
        }
    }

    /// Order-normalised identity of a conflicting pair: `(p, tip)` on
    /// both sides, smaller side first, so A-vs-B and B-vs-A dedup to one.
    fn pair_key(a: (ProcessId, BlockId), b: (ProcessId, BlockId)) -> (u32, u64, u32, u64) {
        let a = (a.0.as_u32(), a.1.as_u64());
        let b = (b.0.as_u32(), b.1.as_u64());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (lo.0, lo.1, hi.0, hi.1)
    }
}

/// Checks Definition 5 against a fixed window: decisions made after `ra`
/// must not conflict with any member of `D_ra`.
#[derive(Clone, Debug)]
pub(crate) struct ResilienceMonitor {
    ra: Round,
    /// Maximal tips of `D_ra` with witnesses.
    d_ra: Vec<(BlockId, ProcessId, DecisionEvent)>,
    pub(crate) violations: Vec<SafetyViolation>,
}

impl ResilienceMonitor {
    pub(crate) fn new(ra: Round) -> ResilienceMonitor {
        ResilienceMonitor {
            ra,
            d_ra: Vec::new(),
            violations: Vec::new(),
        }
    }

    pub(crate) fn observe(&mut self, tree: &BlockTree, who: ProcessId, event: DecisionEvent) {
        if event.round <= self.ra {
            // Accumulate D_ra (keep only maximal tips).
            let tip = event.tip;
            self.d_ra.retain(|(t, _, _)| !tree.is_ancestor(*t, tip));
            if !self.d_ra.iter().any(|(t, _, _)| tree.is_ancestor(tip, *t)) {
                self.d_ra.push((tip, who, event));
            }
        } else {
            for (t, fp, fe) in &self.d_ra {
                if tree.conflicting(*t, event.tip) {
                    self.violations.push(SafetyViolation {
                        first: (*fp, *fe),
                        second: (who, event),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_blocktree::Block;
    use st_types::View;

    fn mk_tree() -> (BlockTree, BlockId, BlockId, BlockId) {
        let mut tree = BlockTree::new();
        let a = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(0),
                vec![],
            ))
            .unwrap();
        let a2 = tree
            .insert(Block::build(a, View::new(2), ProcessId::new(0), vec![]))
            .unwrap();
        let b = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(1),
                vec![],
            ))
            .unwrap();
        (tree, a, a2, b)
    }

    fn ev(round: u64, tip: BlockId) -> DecisionEvent {
        DecisionEvent {
            round: Round::new(round),
            view: View::from_round(Round::new(round)),
            tip,
        }
    }

    #[test]
    fn compatible_decisions_pass() {
        let (tree, a, a2, _) = mk_tree();
        let mut m = SafetyMonitor::new();
        m.observe(&tree, ProcessId::new(0), ev(3, a));
        m.observe(&tree, ProcessId::new(1), ev(5, a2));
        m.observe(&tree, ProcessId::new(2), ev(5, a)); // prefix of frontier
        assert!(m.violations.is_empty());
        assert_eq!(m.frontier.len(), 1);
    }

    #[test]
    fn conflicting_decisions_flagged() {
        let (tree, a, _, b) = mk_tree();
        let mut m = SafetyMonitor::new();
        m.observe(&tree, ProcessId::new(0), ev(3, a));
        m.observe(&tree, ProcessId::new(1), ev(3, b));
        assert_eq!(m.violations.len(), 1);
    }

    #[test]
    fn forked_frontier_conflicts_found_regardless_of_insertion_order() {
        // Frontier forked into a2 and b. A new decision for `a` (a prefix
        // of a2, conflicting with b) must be checked against the WHOLE
        // frontier: depending on insertion order the old code early-
        // returned on the covering entry and missed the conflict with the
        // other branch.
        let (tree, a, a2, b) = mk_tree();
        let mut order1 = SafetyMonitor::new();
        order1.observe(&tree, ProcessId::new(0), ev(3, a2));
        order1.observe(&tree, ProcessId::new(1), ev(3, b)); // fork: 1 violation
        order1.observe(&tree, ProcessId::new(2), ev(5, a)); // covered by a2, conflicts b

        let mut order2 = SafetyMonitor::new();
        order2.observe(&tree, ProcessId::new(1), ev(3, b));
        order2.observe(&tree, ProcessId::new(0), ev(3, a2));
        order2.observe(&tree, ProcessId::new(2), ev(5, a));

        assert_eq!(
            order1.violations.len(),
            order2.violations.len(),
            "violation count depends on frontier insertion order"
        );
        assert_eq!(order1.violations.len(), 2); // (a2,b) and (a,b)
                                                // The covered tip did not displace the longer branch tip.
        assert!(order1.frontier.iter().any(|(t, _, _)| *t == a2));
        assert!(order1.frontier.iter().all(|(t, _, _)| *t != a));
    }

    #[test]
    fn repeated_conflicting_pair_recorded_once() {
        let (tree, a, _, b) = mk_tree();
        let mut m = SafetyMonitor::new();
        m.observe(&tree, ProcessId::new(0), ev(3, a));
        m.observe(&tree, ProcessId::new(1), ev(3, b));
        // The same processes re-decide the same conflicting tips on later
        // rounds (steady-state re-decision): no new violation entries.
        m.observe(&tree, ProcessId::new(0), ev(5, a));
        m.observe(&tree, ProcessId::new(1), ev(5, b));
        m.observe(&tree, ProcessId::new(1), ev(7, b));
        assert_eq!(m.violations.len(), 1, "same pair re-recorded");
        // A *different* process deciding one side is a new witness pair.
        m.observe(&tree, ProcessId::new(2), ev(7, a));
        assert_eq!(m.violations.len(), 2);
    }

    #[test]
    fn dedup_upgrades_witness_to_latest_recurrence() {
        // A pair that first conflicts early (say, inside an asynchronous
        // window) and keeps re-conflicting later must expose the *latest*
        // occurrence: `SimReport::post_window_violations` classifies by
        // witness rounds, so keeping only the first occurrence would
        // reclassify a genuine post-window violation as an in-window
        // orphaning.
        let (tree, a, _, b) = mk_tree();
        let mut m = SafetyMonitor::new();
        m.observe(&tree, ProcessId::new(0), ev(5, a)); // in-window
        m.observe(&tree, ProcessId::new(1), ev(5, b)); // conflict @ (5,5)
        m.observe(&tree, ProcessId::new(0), ev(9, a)); // post-window re-decisions
        m.observe(&tree, ProcessId::new(1), ev(9, b));
        assert_eq!(m.violations.len(), 1);
        let v = &m.violations[0];
        assert_eq!(
            v.first.1.round.min(v.second.1.round),
            Round::new(9),
            "witness not upgraded to the post-window recurrence"
        );
    }

    #[test]
    fn resilience_monitor_separates_pre_and_post() {
        let (tree, a, a2, b) = mk_tree();
        let mut m = ResilienceMonitor::new(Round::new(4));
        m.observe(&tree, ProcessId::new(0), ev(3, a)); // in D_ra
                                                       // Post-window extension of a: fine.
        m.observe(&tree, ProcessId::new(1), ev(7, a2));
        assert!(m.violations.is_empty());
        // Post-window conflicting decision: flagged.
        m.observe(&tree, ProcessId::new(2), ev(7, b));
        assert_eq!(m.violations.len(), 1);
    }

    #[test]
    fn resilience_keeps_maximal_d_ra() {
        let (tree, a, a2, _) = mk_tree();
        let mut m = ResilienceMonitor::new(Round::new(4));
        m.observe(&tree, ProcessId::new(0), ev(1, a));
        m.observe(&tree, ProcessId::new(0), ev(3, a2)); // supersedes a
        assert_eq!(m.d_ra.len(), 1);
        assert_eq!(m.d_ra[0].0, a2);
    }

    #[test]
    fn post_window_classification_is_per_window() {
        let (_tree, a, _, b) = mk_tree();
        let mut r = SimReport::default();
        for (s, e) in [(10u64, 13u64), (24, 27)] {
            r.recoveries.push(RecoveryRecord {
                kind: "async".to_string(),
                start: Round::new(s),
                end: Round::new(e),
                first_decision_after: None,
                recovery_rounds: None,
                violations: 0,
            });
        }
        let pair = |ra: u64, rb: u64| SafetyViolation {
            first: (ProcessId::new(0), ev(ra, a)),
            second: (ProcessId::new(1), ev(rb, b)),
        };
        // Decided entirely in the synchronous gap *between* the spells: a
        // genuine agreement violation — classifying per-window matters
        // here (the old last-window boundary called this an orphaning).
        r.safety_violations.push(pair(18, 20));
        // One decision inside window 2: orphanable.
        r.safety_violations.push(pair(26, 30));
        // One decision in window 1's first post-window round (end + 1):
        // still orphanable.
        r.safety_violations.push(pair(14, 20));
        // Entirely after the last window: genuine.
        r.safety_violations.push(pair(30, 31));
        assert_eq!(r.post_window_violations().len(), 2);
        assert_eq!(r.in_window_orphanings(), 2);
        // Without any window, every violation is genuine.
        r.recoveries.clear();
        assert_eq!(r.post_window_violations().len(), 4);
    }

    #[test]
    #[allow(deprecated)] // the legacy singular surface is exercised on purpose
    fn report_helpers() {
        let mut r = SimReport::default();
        assert!(r.is_safe());
        assert!(r.is_asynchrony_resilient());
        assert_eq!(r.tx_inclusion_rate(), 1.0);
        r.async_window_end = Some(Round::new(10));
        r.first_decision_after_async = Some(Round::new(11));
        assert_eq!(r.healing_lag(), Some(1));
        r.txs.push(TxRecord {
            tx: TxId::new(1),
            submitted: Round::new(2),
            included_everywhere: Some(Round::new(8)),
            decided_round: Some(6),
        });
        r.txs.push(TxRecord {
            tx: TxId::new(2),
            submitted: Round::new(3),
            included_everywhere: None,
            decided_round: None,
        });
        assert_eq!(r.tx_inclusion_rate(), 0.5);
        assert_eq!(r.mean_tx_latency(), Some(6.0));
        assert_eq!(r.txs[0].decide_latency(), Some(4));
        assert_eq!(r.txs[1].decide_latency(), None);
        // `decided_round` is serialized only when present — absent
        // records keep the legacy three-entry shape.
        let v0 = r.txs[0].to_value();
        assert!(v0.get("decided_round").is_some());
        let v1 = r.txs[1].to_value();
        assert!(v1.get("decided_round").is_none());
        assert!(v1.get("included_everywhere").is_some());
    }
}
