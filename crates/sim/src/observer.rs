//! Pluggable execution observers and the simulation event stream.
//!
//! The paper's definitions are all statements about what an execution
//! *observes* — which decisions happened, when, and whether they conflict.
//! This module makes observation a first-class, composable surface: the
//! round loop narrates its execution as a stream of [`SimEvent`]s, and
//! every consumer of that stream — the safety monitor (Definition 2), the
//! per-window resilience monitors (Definition 5), the transaction-liveness
//! ledger, the per-round [`crate::RoundTrace`], and any user-registered
//! probe — is an [`Observer`].
//!
//! The [`crate::SimReport`] is *assembled from the observers* at
//! [`crate::Simulation::finish`]: each built-in observer contributes the
//! report fields it owns, so custom observers ride the exact pipeline the
//! paper's monitors use. Registration happens on
//! [`crate::SimBuilder::observer`]; built-in observers always run first,
//! in a fixed order, which is what keeps observer-assembled reports
//! byte-identical to the pre-observer runner (the determinism-equivalence
//! suite asserts this).
//!
//! # Event ordering within one round
//!
//! 1. [`SimEvent::RoundStart`], then one [`SimEvent::WindowEnter`] per
//!    disruption whose window opens this round;
//! 2. [`SimEvent::TxSubmitted`] for the round's workload (if any);
//! 3. [`SimEvent::CorruptionChange`] if `B_r` differs from the previous
//!    round's corrupted set;
//! 4. one [`SimEvent::DecisionObserved`] per decision event drained from
//!    a well-behaved process, followed by the [`SimEvent::Violation`]s
//!    those decisions triggered (via [`Observer::drain_emitted`]);
//! 5. [`SimEvent::EnvelopeDelivered`] per honest delivery — only
//!    generated when some registered observer returns `true` from
//!    [`Observer::wants_delivery_events`], so the fast path pays nothing
//!    by default;
//! 6. one [`SimEvent::WindowExit`] per disruption whose window closed
//!    this round, then [`SimEvent::RoundEnd`].

use crate::env::{Disruption, EnvView, Timeline};
use crate::metrics::{RoundCost, RoundSample, RoundTrace};
use crate::monitor::{
    RecoveryRecord, ResilienceMonitor, SafetyMonitor, SafetyViolation, SimReport, TxRecord,
};
use crate::runner::SimConfig;
use crate::schedule::Schedule;
use st_blocktree::BlockTree;
use st_core::{DecisionEvent, Protocol, TobProcess};
use st_types::{BlockId, FastSet, ProcessId, Round, TxId};
use std::cell::RefCell;
use std::rc::Rc;

/// Read-only view of the execution handed to every observer hook: the
/// full-knowledge vantage point the paper's monitors have (every process's
/// state, the schedule, a tree absorbing every block ever proposed).
///
/// Generic over the [`Protocol`] being observed, defaulted to
/// [`TobProcess`] so sleepy-protocol probes read exactly as before.
pub struct ObsCtx<'a, P: Protocol = TobProcess> {
    /// The round being executed (for [`Observer::finish`]: the last
    /// executed round).
    pub round: Round,
    /// The environment at this round (segment kind, window offsets,
    /// partition overlay).
    pub env: EnvView,
    /// Every process's state, read-only.
    pub processes: &'a [P],
    /// The participation/corruption schedule.
    pub schedule: &'a Schedule,
    /// A tree absorbing every block ever proposed (monitor knowledge).
    pub global_tree: &'a BlockTree,
    /// The run's configuration.
    pub config: &'a SimConfig,
    /// Cumulative messages sent to the network so far.
    pub messages_sent: usize,
}

/// Which monitor flagged a [`SimEvent::Violation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// An agreement violation (Definition 2): two well-behaved decisions
    /// on conflicting logs.
    Safety,
    /// A Definition-5 violation against disruption window `window` (index
    /// into [`Timeline::disruptions`]): a post-`ra` decision conflicting
    /// with that window's `D_ra`.
    Resilience {
        /// Index of the disruption whose `D_ra` was contradicted.
        window: usize,
    },
}

/// One narrated step of the execution. See the module docs for the
/// within-round ordering.
#[derive(Clone, Debug)]
pub enum SimEvent {
    /// A round is about to execute.
    RoundStart {
        /// The round.
        round: Round,
    },
    /// The workload submitted a fresh transaction to every honest awake
    /// process's mempool.
    TxSubmitted {
        /// The transaction.
        tx: TxId,
        /// The submission round.
        round: Round,
    },
    /// The corrupted set `B_r` changed relative to the previous round.
    CorruptionChange {
        /// The round at which the new set took effect.
        round: Round,
        /// The new corrupted set (empty when everyone healed).
        corrupted: Vec<ProcessId>,
    },
    /// A disruption window (async / bounded-delay / partition) opened.
    WindowEnter {
        /// Index into [`Timeline::disruptions`].
        index: usize,
        /// The disruption's extent and label.
        disruption: Disruption,
    },
    /// A disruption window closed (fired at the end of its last round).
    WindowExit {
        /// Index into [`Timeline::disruptions`].
        index: usize,
        /// The disruption's extent and label.
        disruption: Disruption,
    },
    /// A well-behaved process produced a decision event.
    DecisionObserved {
        /// The deciding process.
        process: ProcessId,
        /// The decision.
        decision: DecisionEvent,
    },
    /// An envelope reached an honest receiver (generated only when some
    /// observer opted in via [`Observer::wants_delivery_events`]; the
    /// corrupted machines' full-knowledge feed is not reported).
    EnvelopeDelivered {
        /// The receiving process.
        receiver: ProcessId,
        /// The original sender.
        sender: ProcessId,
    },
    /// A monitor flagged a violation of one of the paper's definitions.
    Violation {
        /// Which monitor (and, for resilience, which window).
        kind: ViolationKind,
        /// The conflicting decision pair.
        violation: SafetyViolation,
    },
    /// A round finished executing (after delivery, compaction and
    /// bookkeeping).
    RoundEnd {
        /// The round.
        round: Round,
        /// Envelopes delivered to honest receivers this round.
        delivered: usize,
        /// Per-phase execution cost — all zero unless the run was built
        /// with [`SimConfig::instrument`](crate::SimConfig::instrument).
        cost: RoundCost,
    },
}

/// A pluggable execution observer.
///
/// Every hook is optional (default no-op); [`Observer::on_event`] is the
/// uniform entry point and by default dispatches to the per-event hooks,
/// so implementors can override either granularity. Observers run in
/// registration order — built-ins first — and see every event of the run.
///
/// Observers that *detect* things (the built-in monitors) can publish
/// events of their own by buffering them and returning them from
/// [`Observer::drain_emitted`]; the round loop forwards drained events to
/// every observer after each decision wave.
pub trait Observer<P: Protocol = TobProcess> {
    /// Human-readable observer name (diagnostics).
    fn name(&self) -> &str {
        "observer"
    }

    /// Opt-in for per-envelope [`SimEvent::EnvelopeDelivered`] events.
    /// The default `false` keeps the zero-copy delivery fast path free of
    /// per-envelope event construction; return `true` only if the
    /// observer actually consumes deliveries (checked once at build).
    fn wants_delivery_events(&self) -> bool {
        false
    }

    /// Uniform event entry point; the default dispatches to the
    /// fine-grained hooks below.
    fn on_event(&mut self, ctx: &ObsCtx<'_, P>, event: &SimEvent) {
        match event {
            SimEvent::RoundStart { round } => self.on_round_start(ctx, *round),
            SimEvent::TxSubmitted { tx, round } => self.on_tx_submitted(ctx, *tx, *round),
            SimEvent::CorruptionChange { round, corrupted } => {
                self.on_corruption_change(ctx, *round, corrupted)
            }
            SimEvent::WindowEnter { index, disruption } => {
                self.on_window_enter(ctx, *index, disruption)
            }
            SimEvent::WindowExit { index, disruption } => {
                self.on_window_exit(ctx, *index, disruption)
            }
            SimEvent::DecisionObserved { process, decision } => {
                self.on_decision(ctx, *process, *decision)
            }
            SimEvent::EnvelopeDelivered { receiver, sender } => {
                self.on_delivery(ctx, *receiver, *sender)
            }
            SimEvent::Violation { kind, violation } => self.on_violation(ctx, *kind, violation),
            SimEvent::RoundEnd {
                round,
                delivered,
                cost,
            } => {
                self.on_round_cost(ctx, cost);
                self.on_round_end(ctx, *round, *delivered)
            }
        }
    }

    /// A round is about to execute.
    fn on_round_start(&mut self, ctx: &ObsCtx<'_, P>, round: Round) {
        let _ = (ctx, round);
    }

    /// The workload submitted a transaction.
    fn on_tx_submitted(&mut self, ctx: &ObsCtx<'_, P>, tx: TxId, round: Round) {
        let _ = (ctx, tx, round);
    }

    /// The corrupted set changed.
    fn on_corruption_change(&mut self, ctx: &ObsCtx<'_, P>, round: Round, corrupted: &[ProcessId]) {
        let _ = (ctx, round, corrupted);
    }

    /// A disruption window opened.
    fn on_window_enter(&mut self, ctx: &ObsCtx<'_, P>, index: usize, disruption: &Disruption) {
        let _ = (ctx, index, disruption);
    }

    /// A disruption window closed.
    fn on_window_exit(&mut self, ctx: &ObsCtx<'_, P>, index: usize, disruption: &Disruption) {
        let _ = (ctx, index, disruption);
    }

    /// A well-behaved process decided.
    fn on_decision(&mut self, ctx: &ObsCtx<'_, P>, process: ProcessId, decision: DecisionEvent) {
        let _ = (ctx, process, decision);
    }

    /// An envelope reached an honest receiver (only with
    /// [`Observer::wants_delivery_events`]).
    fn on_delivery(&mut self, ctx: &ObsCtx<'_, P>, receiver: ProcessId, sender: ProcessId) {
        let _ = (ctx, receiver, sender);
    }

    /// A monitor flagged a violation.
    fn on_violation(
        &mut self,
        ctx: &ObsCtx<'_, P>,
        kind: ViolationKind,
        violation: &SafetyViolation,
    ) {
        let _ = (ctx, kind, violation);
    }

    /// The round's per-phase cost, dispatched immediately before
    /// [`Observer::on_round_end`] (all zero unless instrumented).
    fn on_round_cost(&mut self, ctx: &ObsCtx<'_, P>, cost: &RoundCost) {
        let _ = (ctx, cost);
    }

    /// A round finished executing.
    fn on_round_end(&mut self, ctx: &ObsCtx<'_, P>, round: Round, delivered: usize) {
        let _ = (ctx, round, delivered);
    }

    /// Events this observer wants to publish to the other observers,
    /// drained by the round loop after each decision wave. Handlers must
    /// not emit in response to drained events without a termination
    /// condition (the loop pumps until quiescence).
    fn drain_emitted(&mut self) -> Vec<SimEvent> {
        Vec::new()
    }

    /// Contribute this observer's findings to the final report. Built-in
    /// observers fill the [`SimReport`] fields they own; user observers
    /// typically keep their conclusions internal (the report's shape is
    /// fixed), but may post-process fields already filled by the
    /// built-ins, which always run first.
    fn finish(&mut self, ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        let _ = (ctx, report);
    }
}

// ---------------------------------------------------------------------------
// Built-in observers — the paper's monitors, re-expressed on the trait.
// ---------------------------------------------------------------------------

/// Definition 2 (agreement), as an observer. Owns
/// [`SimReport::safety_violations`].
pub(crate) struct SafetyObserver {
    monitor: SafetyMonitor,
    emitted: Vec<SimEvent>,
}

impl SafetyObserver {
    pub(crate) fn new() -> SafetyObserver {
        SafetyObserver {
            monitor: SafetyMonitor::new(),
            emitted: Vec::new(),
        }
    }
}

impl<P: Protocol> Observer<P> for SafetyObserver {
    fn name(&self) -> &str {
        "safety-monitor"
    }

    fn on_decision(&mut self, ctx: &ObsCtx<'_, P>, process: ProcessId, decision: DecisionEvent) {
        let before = self.monitor.violations.len();
        self.monitor.observe(ctx.global_tree, process, decision);
        // New conflicting pairs become events; witness upgrades of pairs
        // already reported do not re-fire.
        for v in &self.monitor.violations[before..] {
            self.emitted.push(SimEvent::Violation {
                kind: ViolationKind::Safety,
                violation: v.clone(),
            });
        }
    }

    fn drain_emitted(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.emitted)
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        report.safety_violations = std::mem::take(&mut self.monitor.violations);
    }
}

/// Definition 5 + per-window recovery bookkeeping, as an observer. Owns
/// [`SimReport::resilience_violations`], [`SimReport::recoveries`] and the
/// legacy singular healing fields.
pub(crate) struct ResilienceObserver {
    disruptions: Vec<Disruption>,
    monitors: Vec<ResilienceMonitor>,
    first_after: Vec<Option<Round>>,
    last_disruption_end: Option<Round>,
    first_decision_after_last: Option<Round>,
    emitted: Vec<SimEvent>,
}

impl ResilienceObserver {
    pub(crate) fn new(timeline: &Timeline) -> ResilienceObserver {
        let disruptions = timeline.disruptions();
        let monitors = disruptions
            .iter()
            .map(|d| {
                ResilienceMonitor::new(
                    d.start
                        .prev()
                        .expect("timeline windows start after round 0"), // stlint::allow(panic, reason = "Timeline window constructors reject windows starting at round 0, so prev() always exists")
                )
            })
            .collect();
        let first_after = vec![None; disruptions.len()];
        ResilienceObserver {
            last_disruption_end: timeline.last_disruption_end(),
            monitors,
            first_after,
            disruptions,
            first_decision_after_last: None,
            emitted: Vec::new(),
        }
    }
}

impl<P: Protocol> Observer<P> for ResilienceObserver {
    fn name(&self) -> &str {
        "resilience-monitor"
    }

    fn on_decision(&mut self, ctx: &ObsCtx<'_, P>, process: ProcessId, decision: DecisionEvent) {
        for (i, mon) in self.monitors.iter_mut().enumerate() {
            let before = mon.violations.len();
            mon.observe(ctx.global_tree, process, decision);
            for v in &mon.violations[before..] {
                self.emitted.push(SimEvent::Violation {
                    kind: ViolationKind::Resilience { window: i },
                    violation: v.clone(),
                });
            }
        }
        for (i, d) in self.disruptions.iter().enumerate() {
            if decision.round > d.end && self.first_after[i].is_none() {
                self.first_after[i] = Some(decision.round);
            }
        }
        if let Some(end) = self.last_disruption_end {
            if decision.round > end && self.first_decision_after_last.is_none() {
                self.first_decision_after_last = Some(decision.round);
            }
        }
    }

    fn drain_emitted(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.emitted)
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        report.recoveries = self
            .disruptions
            .iter()
            .zip(&self.monitors)
            .zip(&self.first_after)
            .map(|((d, mon), first)| RecoveryRecord {
                kind: d.label.to_string(),
                start: d.start,
                end: d.end,
                first_decision_after: *first,
                recovery_rounds: first.map(|f| f.as_u64() - d.end.as_u64()),
                violations: mon.violations.len(),
            })
            .collect();
        report.resilience_violations = self
            .monitors
            .iter_mut()
            .flat_map(|m| std::mem::take(&mut m.violations))
            .collect();
        #[allow(deprecated)]
        {
            report.first_decision_after_async = self.first_decision_after_last;
            report.async_window_end = self.last_disruption_end;
        }
    }
}

/// Transaction-liveness ledger (Definition 2's liveness, quantified), as
/// an observer. Owns [`SimReport::txs`].
pub(crate) struct TxLedger {
    txs: Vec<TxRecord>,
    /// Cached set of txs in each process's decided log (refreshed when
    /// the decided tip changes).
    decided_txs: Vec<(BlockId, FastSet<TxId>)>,
}

impl TxLedger {
    pub(crate) fn new(n: usize) -> TxLedger {
        TxLedger {
            txs: Vec::new(),
            decided_txs: vec![(BlockId::GENESIS, FastSet::default()); n],
        }
    }
}

impl<P: Protocol> Observer<P> for TxLedger {
    fn name(&self) -> &str {
        "tx-ledger"
    }

    fn on_tx_submitted(&mut self, _ctx: &ObsCtx<'_, P>, tx: TxId, round: Round) {
        self.txs.push(TxRecord {
            tx,
            submitted: round,
            included_everywhere: None,
            decided_round: None,
        });
    }

    fn on_round_end(&mut self, ctx: &ObsCtx<'_, P>, round: Round, _delivered: usize) {
        if self.txs.is_empty() {
            return;
        }
        let next = round.next();
        for p in ProcessId::all(ctx.schedule.n()) {
            let proc = &ctx.processes[p.index()];
            let tip = proc.decided_tip();
            if self.decided_txs[p.index()].0 != tip {
                let set: FastSet<TxId> = proc.tree().log_transactions(tip).into_iter().collect();
                self.decided_txs[p.index()] = (tip, set);
            }
        }
        let awake_next: Vec<ProcessId> = ctx.schedule.honest_awake(next).into_iter().collect();
        if awake_next.is_empty() {
            return;
        }
        for rec in self
            .txs
            .iter_mut()
            .filter(|t| t.included_everywhere.is_none() || t.decided_round.is_none())
        {
            let mut anywhere = false;
            let mut everywhere = true;
            for p in &awake_next {
                if self.decided_txs[p.index()].1.contains(&rec.tx) {
                    anywhere = true;
                } else {
                    everywhere = false;
                }
            }
            // First honest decided log containing the tx: the
            // client-observed decision point.
            if rec.decided_round.is_none() && anywhere {
                rec.decided_round = Some(next.as_u64());
            }
            if rec.included_everywhere.is_none() && everywhere {
                rec.included_everywhere = Some(next);
            }
        }
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        report.txs = std::mem::take(&mut self.txs);
    }
}

/// Decision accounting, as an observer. Owns
/// [`SimReport::decisions_total`], [`SimReport::per_process_decisions`]
/// and [`SimReport::deciding_rounds`].
pub(crate) struct DecisionLedger {
    observed: Vec<usize>,
    deciding_rounds: usize,
    any_this_round: bool,
}

impl DecisionLedger {
    pub(crate) fn new(n: usize) -> DecisionLedger {
        DecisionLedger {
            observed: vec![0; n],
            deciding_rounds: 0,
            any_this_round: false,
        }
    }
}

impl<P: Protocol> Observer<P> for DecisionLedger {
    fn name(&self) -> &str {
        "decision-ledger"
    }

    fn on_decision(&mut self, _ctx: &ObsCtx<'_, P>, process: ProcessId, _decision: DecisionEvent) {
        self.observed[process.index()] += 1;
        self.any_this_round = true;
    }

    fn on_round_end(&mut self, _ctx: &ObsCtx<'_, P>, _round: Round, _delivered: usize) {
        if self.any_this_round {
            self.deciding_rounds += 1;
            self.any_this_round = false;
        }
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        report.decisions_total = self.observed.iter().sum();
        report.per_process_decisions = std::mem::take(&mut self.observed);
        report.deciding_rounds = self.deciding_rounds;
    }
}

/// Per-round time series, as an observer. Owns [`SimReport::timeline`].
pub(crate) struct TraceObserver {
    trace: RoundTrace,
    messages_at_round_start: usize,
    decisions_this_round: usize,
    cost_this_round: RoundCost,
}

impl TraceObserver {
    pub(crate) fn new() -> TraceObserver {
        TraceObserver {
            trace: RoundTrace::new(),
            messages_at_round_start: 0,
            decisions_this_round: 0,
            cost_this_round: RoundCost::default(),
        }
    }
}

impl<P: Protocol> Observer<P> for TraceObserver {
    fn name(&self) -> &str {
        "round-trace"
    }

    fn on_round_start(&mut self, ctx: &ObsCtx<'_, P>, _round: Round) {
        self.messages_at_round_start = ctx.messages_sent;
        self.decisions_this_round = 0;
    }

    fn on_decision(&mut self, _ctx: &ObsCtx<'_, P>, _process: ProcessId, _decision: DecisionEvent) {
        self.decisions_this_round += 1;
    }

    fn on_round_cost(&mut self, _ctx: &ObsCtx<'_, P>, cost: &RoundCost) {
        self.cost_this_round = *cost;
    }

    fn on_round_end(&mut self, ctx: &ObsCtx<'_, P>, round: Round, delivered: usize) {
        let honest = ctx.schedule.honest_awake(round);
        let height = |p: ProcessId| {
            let proc = &ctx.processes[p.index()];
            proc.tree().height(proc.decided_tip()).unwrap_or(0)
        };
        let heights: Vec<u64> = honest.iter().map(|&p| height(p)).collect();
        let all_max = ProcessId::all(ctx.schedule.n())
            .filter(|&p| !ctx.schedule.is_byzantine(p, round))
            .map(height)
            .max()
            .unwrap_or(0);
        self.trace.push(RoundSample {
            round: round.as_u64(),
            honest_awake: honest.len(),
            byzantine: ctx.schedule.byzantine(round).len(),
            is_async: ctx.env.is_async(),
            delta: ctx.env.delta(),
            partitioned: ctx.env.partitioned,
            messages_sent: ctx.messages_sent - self.messages_at_round_start,
            messages_delivered: delivered,
            decisions: self.decisions_this_round,
            max_decided_height: all_max,
            min_decided_height: heights.iter().copied().min().unwrap_or(0),
            step_send_us: self.cost_this_round.step_send_us,
            delivery_us: self.cost_this_round.delivery_us,
            tally_us: self.cost_this_round.tally_us,
            tally_cache_hits: self.cost_this_round.tally_cache_hits,
            tally_cache_misses: self.cost_this_round.tally_cache_misses,
        });
    }

    fn finish(&mut self, _ctx: &ObsCtx<'_, P>, report: &mut SimReport) {
        report.timeline = std::mem::take(&mut self.trace);
    }
}

/// Shared handle to the per-process decision histories a [`DecisionTap`]
/// collects (index = process index, events in observation order).
pub type DecisionLog = Rc<RefCell<Vec<Vec<DecisionEvent>>>>;

/// A user observer that records every honest decision per process for
/// reading *after* the run.
///
/// The round loop **drains** each process's decision log every round (so
/// per-process event storage stays bounded on long horizons), which means
/// post-run code can no longer read `decisions()` off the processes —
/// everything has been consumed into the observer pipeline. Code that
/// wants the full history registers a tap and reads the shared log:
///
/// ```
/// use st_sim::{DecisionTap, SimBuilder};
/// use st_types::Params;
///
/// let params = Params::builder(6).expiration(2).build()?;
/// let (tap, log) = DecisionTap::new(6);
/// let report = SimBuilder::new(params, 3).horizon(20).observer(tap).run();
/// assert_eq!(
///     log.borrow().iter().map(|d| d.len()).sum::<usize>(),
///     report.decisions_total,
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DecisionTap {
    log: DecisionLog,
}

impl DecisionTap {
    /// A tap over `n` processes, plus the shared handle its collected log
    /// is read through.
    pub fn new(n: usize) -> (DecisionTap, DecisionLog) {
        let log: DecisionLog = Rc::new(RefCell::new(vec![Vec::new(); n]));
        (
            DecisionTap {
                log: Rc::clone(&log),
            },
            log,
        )
    }
}

impl<P: Protocol> Observer<P> for DecisionTap {
    fn name(&self) -> &str {
        "decision-tap"
    }

    fn on_decision(&mut self, _ctx: &ObsCtx<'_, P>, process: ProcessId, decision: DecisionEvent) {
        self.log.borrow_mut()[process.index()].push(decision);
    }
}
