//! Participation schedules: `H_r`, `B_r`, `O_r` for every round.
//!
//! A [`Schedule`] fixes, for a whole execution, which processes are awake
//! in each round and from which round each corrupted process is Byzantine
//! (the growing-adversary model: `B_r ⊆ B_{r+1}`). Byzantine processes
//! never sleep (Section 2.1), so awake flags only govern well-behaved
//! processes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_types::{ProcessId, Round};

/// Options for the bounded-churn random schedule generator.
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// Probability that an awake process goes to sleep in a given round.
    pub sleep_prob: f64,
    /// Probability that an asleep process wakes in a given round.
    pub wake_prob: f64,
    /// Minimum fraction of processes kept awake every round (guard against
    /// degenerate empty rounds).
    pub min_awake_frac: f64,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            sleep_prob: 0.0, // overridden by the per-η churn target
            wake_prob: 0.25,
            min_awake_frac: 0.25,
        }
    }
}

/// A complete participation schedule for `n` processes over `horizon + 1`
/// rounds (rounds `0..=horizon`).
#[derive(Clone, Debug)]
pub struct Schedule {
    n: usize,
    horizon: u64,
    /// Round-major awake flags for well-behaved processes.
    awake: Vec<Vec<bool>>,
    /// `corrupt_from[p] = Some(r)` means `p ∈ B_{r'}` for all `r' ≥ r`.
    corrupt_from: Vec<Option<u64>>,
}

impl Schedule {
    /// Everyone awake in every round, nobody corrupted.
    pub fn full(n: usize, horizon: u64) -> Schedule {
        Schedule {
            n,
            horizon,
            awake: (0..=horizon).map(|_| vec![true; n]).collect(),
            corrupt_from: vec![None; n],
        }
    }

    /// A schedule from an explicit round-major awake matrix
    /// (`awake[r][p]`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or ragged.
    pub fn custom(awake: Vec<Vec<bool>>) -> Schedule {
        assert!(!awake.is_empty(), "schedule must cover at least round 0");
        let n = awake[0].len();
        assert!(awake.iter().all(|row| row.len() == n), "ragged awake matrix");
        Schedule {
            n,
            horizon: awake.len() as u64 - 1,
            awake,
            corrupt_from: vec![None; n],
        }
    }

    /// Random bounded churn: each round, awake processes fall asleep with
    /// `sleep_prob` and asleep ones wake with `opts.wake_prob`, never
    /// dropping below `opts.min_awake_frac`. Round 0 starts fully awake.
    ///
    /// `sleep_prob` here is the *per-round* drop probability; the per-`η`
    /// churn rate this induces is roughly `1 − (1 − sleep_prob)^η` and is
    /// verified empirically by `st-analysis`'s condition checkers rather
    /// than guaranteed by construction.
    pub fn random_churn(
        n: usize,
        horizon: u64,
        sleep_prob: f64,
        seed: u64,
        opts: &ChurnOptions,
    ) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e);
        let min_awake = ((n as f64) * opts.min_awake_frac).ceil().max(1.0) as usize;
        let mut awake = Vec::with_capacity(horizon as usize + 1);
        let mut cur = vec![true; n];
        awake.push(cur.clone());
        for _ in 1..=horizon {
            let mut next = cur.clone();
            for flag in next.iter_mut() {
                if *flag {
                    if rng.random_bool(sleep_prob.clamp(0.0, 1.0)) {
                        *flag = false;
                    }
                } else if rng.random_bool(opts.wake_prob.clamp(0.0, 1.0)) {
                    *flag = true;
                }
            }
            // Enforce the floor by waking random sleepers.
            let mut awake_count = next.iter().filter(|&&a| a).count();
            while awake_count < min_awake {
                let idx = rng.random_range(0..n);
                if !next[idx] {
                    next[idx] = true;
                    awake_count += 1;
                }
            }
            awake.push(next.clone());
            cur = next;
        }
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
        }
    }

    /// A mass-sleep incident: a fraction `frac` of the processes (the
    /// highest-numbered ones) are asleep during rounds `[from, to]` —
    /// the May-2023 Ethereum scenario from the introduction.
    pub fn mass_sleep(n: usize, horizon: u64, frac: f64, from: u64, to: u64) -> Schedule {
        let sleepers = ((n as f64) * frac.clamp(0.0, 1.0)).floor() as usize;
        let awake = (0..=horizon)
            .map(|r| {
                (0..n)
                    .map(|p| !((from..=to).contains(&r) && p >= n - sleepers))
                    .collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
        }
    }

    /// Adversarially-paced churn: a group of `⌊γ·n⌋` processes sleeps for
    /// exactly `eta` rounds, then wakes as the next group (round-robin)
    /// goes to sleep.
    ///
    /// This is the worst-case pattern for the expiration mechanism: at
    /// every round, a full `γ` fraction of the recently-awake processes
    /// is asleep with **unexpired** stale votes, maximising the perceived
    /// participation inflation that the adjusted failure ratio `β̃` of
    /// Section 2.3 prices in. Used by the empirical Figure-1 boundary.
    pub fn rotating_sleep(n: usize, horizon: u64, gamma: f64, eta: u64) -> Schedule {
        let group = ((n as f64) * gamma.clamp(0.0, 0.9)).floor() as usize;
        let eta = eta.max(1);
        let awake = (0..=horizon)
            .map(|r| {
                if group == 0 {
                    return vec![true; n];
                }
                let phase = (r / eta) as usize;
                let start = (phase * group) % n;
                (0..n)
                    .map(|p| {
                        // Sleeping window [start, start+group) cyclically.
                        let offset = (p + n - start) % n;
                        offset >= group
                    })
                    .collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
        }
    }

    /// Oscillating participation: the awake fraction swings between
    /// `min_frac` and 1.0 with the given period (diurnal pattern).
    pub fn oscillating(n: usize, horizon: u64, min_frac: f64, period: u64) -> Schedule {
        let period = period.max(2);
        let awake = (0..=horizon)
            .map(|r| {
                let phase = (r % period) as f64 / period as f64 * std::f64::consts::TAU;
                let frac = min_frac + (1.0 - min_frac) * (0.5 + 0.5 * phase.cos());
                let awake_count = ((n as f64) * frac).round().max(1.0) as usize;
                (0..n).map(|p| p < awake_count).collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
        }
    }

    /// Marks `p` as corrupted from round `from` onward (growing
    /// adversary). Corrupting at round 0 models a static adversary.
    /// Returns `self` for chaining.
    #[must_use]
    pub fn with_corrupted(mut self, p: ProcessId, from: Round) -> Schedule {
        self.corrupt_from[p.index()] = Some(match self.corrupt_from[p.index()] {
            // Growing adversary: corruption can only move earlier, never
            // be revoked.
            Some(existing) => existing.min(from.as_u64()),
            None => from.as_u64(),
        });
        self
    }

    /// Corrupts the `f` highest-numbered processes from round 0 (the
    /// common static-adversary setup).
    #[must_use]
    pub fn with_static_byzantine(mut self, f: usize) -> Schedule {
        let n = self.n;
        for p in n.saturating_sub(f)..n {
            self.corrupt_from[p] = Some(0);
        }
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The last round covered.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Whether well-behaved process `p` is awake at (the beginning of)
    /// round `r`. Rounds beyond the horizon repeat the final row.
    pub fn is_awake(&self, p: ProcessId, r: Round) -> bool {
        let row = (r.as_u64().min(self.horizon)) as usize;
        self.awake[row][p.index()]
    }

    /// Whether `p` is Byzantine at round `r`.
    pub fn is_byzantine(&self, p: ProcessId, r: Round) -> bool {
        match self.corrupt_from[p.index()] {
            Some(from) => r.as_u64() >= from,
            None => false,
        }
    }

    /// `H_r`: well-behaved processes awake at round `r`.
    pub fn honest_awake(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_awake(p, r) && !self.is_byzantine(p, r))
            .collect()
    }

    /// `B_r`: Byzantine processes at round `r` (they never sleep).
    pub fn byzantine(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_byzantine(p, r))
            .collect()
    }

    /// `O_r = H_r ∪ B_r`.
    pub fn online(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_byzantine(p, r) || self.is_awake(p, r))
            .collect()
    }

    /// `H_{s,r} = ∪_{s ≤ r' ≤ r} H_{r'}` (the union of honest-awake sets
    /// over a window, Section 2.3).
    pub fn honest_awake_union(&self, s: Round, r: Round) -> Vec<ProcessId> {
        let mut seen = vec![false; self.n];
        let mut r_cur = s;
        while r_cur <= r {
            for p in self.honest_awake(r_cur) {
                seen[p.index()] = true;
            }
            r_cur = r_cur.next();
        }
        ProcessId::all(self.n).filter(|p| seen[p.index()]).collect()
    }

    /// `O_{s,r} = ∪_{s ≤ r' ≤ r} O_{r'}`.
    pub fn online_union(&self, s: Round, r: Round) -> Vec<ProcessId> {
        let mut seen = vec![false; self.n];
        let mut r_cur = s;
        while r_cur <= r {
            for p in self.online(r_cur) {
                seen[p.index()] = true;
            }
            r_cur = r_cur.next();
        }
        ProcessId::all(self.n).filter(|p| seen[p.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schedule_everyone_always_awake() {
        let s = Schedule::full(4, 10);
        for r in 0..=10 {
            assert_eq!(s.honest_awake(Round::new(r)).len(), 4);
            assert!(s.byzantine(Round::new(r)).is_empty());
        }
    }

    #[test]
    fn static_byzantine_marks_tail_processes() {
        let s = Schedule::full(6, 5).with_static_byzantine(2);
        let byz = s.byzantine(Round::ZERO);
        assert_eq!(byz, vec![ProcessId::new(4), ProcessId::new(5)]);
        assert_eq!(s.honest_awake(Round::ZERO).len(), 4);
        // O_r includes everyone (Byzantine never sleep).
        assert_eq!(s.online(Round::ZERO).len(), 6);
    }

    #[test]
    fn growing_adversary_is_monotone() {
        let s = Schedule::full(4, 20)
            .with_corrupted(ProcessId::new(1), Round::new(5))
            .with_corrupted(ProcessId::new(2), Round::new(10));
        for r in 0..20u64 {
            let now = s.byzantine(Round::new(r)).len();
            let next = s.byzantine(Round::new(r + 1)).len();
            assert!(next >= now, "B_r shrank at {r}");
        }
        assert!(!s.is_byzantine(ProcessId::new(1), Round::new(4)));
        assert!(s.is_byzantine(ProcessId::new(1), Round::new(5)));
    }

    #[test]
    fn corruption_never_revoked() {
        let s = Schedule::full(2, 10)
            .with_corrupted(ProcessId::new(0), Round::new(3))
            .with_corrupted(ProcessId::new(0), Round::new(8)); // later mark ignored
        assert!(s.is_byzantine(ProcessId::new(0), Round::new(3)));
        let s2 = Schedule::full(2, 10)
            .with_corrupted(ProcessId::new(0), Round::new(8))
            .with_corrupted(ProcessId::new(0), Round::new(3)); // earlier wins
        assert!(s2.is_byzantine(ProcessId::new(0), Round::new(3)));
    }

    #[test]
    fn mass_sleep_window() {
        let s = Schedule::mass_sleep(10, 20, 0.6, 5, 8);
        assert_eq!(s.honest_awake(Round::new(4)).len(), 10);
        assert_eq!(s.honest_awake(Round::new(5)).len(), 4);
        assert_eq!(s.honest_awake(Round::new(8)).len(), 4);
        assert_eq!(s.honest_awake(Round::new(9)).len(), 10);
    }

    #[test]
    fn random_churn_respects_floor_and_determinism() {
        let opts = ChurnOptions {
            min_awake_frac: 0.3,
            ..Default::default()
        };
        let a = Schedule::random_churn(20, 50, 0.2, 7, &opts);
        let b = Schedule::random_churn(20, 50, 0.2, 7, &opts);
        for r in 0..=50 {
            let round = Round::new(r);
            assert_eq!(a.honest_awake(round), b.honest_awake(round), "nondeterministic");
            assert!(a.honest_awake(round).len() >= 6, "floor violated at {r}");
        }
        // Some churn actually happened.
        let changes: usize = (1..=50)
            .map(|r| {
                let prev = a.honest_awake(Round::new(r - 1));
                let cur = a.honest_awake(Round::new(r));
                prev.iter().filter(|p| !cur.contains(p)).count()
            })
            .sum();
        assert!(changes > 0, "no churn generated");
    }

    #[test]
    fn rotating_sleep_keeps_constant_stale_mass() {
        let s = Schedule::rotating_sleep(10, 40, 0.2, 4);
        for r in 0..=40 {
            assert_eq!(s.honest_awake(Round::new(r)).len(), 8, "round {r}");
        }
        // The sleeping group changes every η rounds.
        let g0 = s.honest_awake(Round::new(0));
        let g1 = s.honest_awake(Round::new(4));
        assert_ne!(g0, g1);
        // γ = 0 degenerates to full participation.
        let full = Schedule::rotating_sleep(10, 10, 0.0, 4);
        assert_eq!(full.honest_awake(Round::new(5)).len(), 10);
    }

    #[test]
    fn oscillating_hits_min_and_max() {
        let s = Schedule::oscillating(10, 40, 0.4, 8);
        let counts: Vec<usize> = (0..=40)
            .map(|r| s.honest_awake(Round::new(r)).len())
            .collect();
        assert!(counts.contains(&10));
        assert!(counts.iter().any(|&c| c <= 5));
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn unions_accumulate() {
        let s = Schedule::mass_sleep(4, 10, 0.5, 3, 6);
        // During the incident only p0, p1 are awake, but the union over
        // [0, 5] still contains everyone.
        assert_eq!(s.honest_awake(Round::new(4)).len(), 2);
        assert_eq!(
            s.honest_awake_union(Round::ZERO, Round::new(5)).len(),
            4
        );
        assert_eq!(s.online_union(Round::new(3), Round::new(4)).len(), 2);
    }

    #[test]
    fn beyond_horizon_repeats_last_row() {
        let s = Schedule::mass_sleep(4, 5, 0.5, 5, 5);
        assert_eq!(s.honest_awake(Round::new(5)).len(), 2);
        // Round 6 is past the horizon: repeats round 5's row.
        assert_eq!(s.honest_awake(Round::new(6)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn custom_rejects_ragged() {
        let _ = Schedule::custom(vec![vec![true, true], vec![true]]);
    }
}
