//! Participation schedules: `H_r`, `B_r`, `O_r` for every round.
//!
//! A [`Schedule`] fixes, for a whole execution, which processes are awake
//! in each round and from which round each corrupted process is Byzantine
//! (the growing-adversary model: `B_r ⊆ B_{r+1}`). Byzantine processes
//! never sleep (Section 2.1), so awake flags only govern well-behaved
//! processes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_types::{ProcessId, Round};

/// Options for the bounded-churn random schedule generator.
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// Probability that an awake process goes to sleep in a given round.
    pub sleep_prob: f64,
    /// Probability that an asleep process wakes in a given round.
    pub wake_prob: f64,
    /// Minimum fraction of processes kept awake every round (guard against
    /// degenerate empty rounds).
    pub min_awake_frac: f64,
    /// Churn envelope: a process may start sleeping only while fewer than
    /// `max(1, ⌊max_dropped_frac · |recently awake|⌋)` processes that were
    /// awake within the last [`ChurnOptions::drop_window`] rounds are
    /// currently asleep. This is what makes the generator *bounded*-churn:
    /// Equation 1 compares the recently-awake-but-now-asleep set against
    /// `γ·|H_{r−η,r−1}|`, so uncapped independent sleep events cluster past
    /// any small `γ` at realistic `n`. Set to `1.0` to disable the envelope
    /// and get raw independent per-round sleep events (ablations and stress
    /// sweeps that deliberately drive churn past `γ` do this).
    pub max_dropped_frac: f64,
    /// How many rounds back a process still counts as "recently awake" for
    /// the [`ChurnOptions::max_dropped_frac`] envelope. Must cover the
    /// expiration window `η` the schedule will be checked against.
    pub drop_window: u64,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            sleep_prob: 0.0, // overridden by the per-η churn target
            wake_prob: 0.25,
            min_awake_frac: 0.25,
            max_dropped_frac: 0.1,
            drop_window: 8,
        }
    }
}

/// A complete participation schedule for `n` processes over `horizon + 1`
/// rounds (rounds `0..=horizon`).
#[derive(Clone, Debug)]
pub struct Schedule {
    n: usize,
    horizon: u64,
    /// Round-major awake flags for well-behaved processes.
    awake: Vec<Vec<bool>>,
    /// `corrupt_from[p] = Some(r)` means `p ∈ B_{r'}` for all `r' ≥ r`
    /// (until `corrupt_until[p]`, if set).
    corrupt_from: Vec<Option<u64>>,
    /// `corrupt_until[p] = Some(r)` bounds the corruption: `p` is honest
    /// again from round `r` on. `None` (the paper's growing-adversary
    /// model) means corruption never ends.
    corrupt_until: Vec<Option<u64>>,
}

impl Schedule {
    /// Everyone awake in every round, nobody corrupted.
    pub fn full(n: usize, horizon: u64) -> Schedule {
        Schedule {
            n,
            horizon,
            awake: (0..=horizon).map(|_| vec![true; n]).collect(),
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// A schedule from an explicit round-major awake matrix
    /// (`awake[r][p]`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or ragged.
    pub fn custom(awake: Vec<Vec<bool>>) -> Schedule {
        assert!(!awake.is_empty(), "schedule must cover at least round 0");
        let n = awake[0].len();
        assert!(
            awake.iter().all(|row| row.len() == n),
            "ragged awake matrix"
        );
        Schedule {
            n,
            horizon: awake.len() as u64 - 1,
            awake,
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// Random bounded churn: each round, awake processes fall asleep with
    /// `sleep_prob` and asleep ones wake with `opts.wake_prob`, never
    /// dropping below `opts.min_awake_frac`. Round 0 starts fully awake.
    ///
    /// `sleep_prob` is the *per-round* drop probability; unconstrained, it
    /// induces a per-`η` churn rate of roughly `1 − (1 − sleep_prob)^η`.
    /// Sleep events are additionally admitted only within the
    /// [`ChurnOptions::max_dropped_frac`] envelope, which keeps the
    /// recently-awake-but-asleep set (the quantity Equation 1 bounds by
    /// `γ`) small by construction; when the envelope binds, realized churn
    /// is below the formula. Set `max_dropped_frac: 1.0` for raw
    /// independent sleep events, and use `st-analysis`'s condition
    /// checkers to verify what a generated schedule actually satisfies.
    pub fn random_churn(
        n: usize,
        horizon: u64,
        sleep_prob: f64,
        seed: u64,
        opts: &ChurnOptions,
    ) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e);
        let min_awake = ((n as f64) * opts.min_awake_frac).ceil().max(1.0) as usize;
        let dropped_frac = opts.max_dropped_frac.clamp(0.0, 1.0);
        let mut awake = Vec::with_capacity(horizon as usize + 1);
        let mut cur = vec![true; n];
        // last_awake[p] = most recent round p was awake (round 0: everyone).
        let mut last_awake = vec![0u64; n];
        let mut order: Vec<usize> = (0..n).collect();
        awake.push(cur.clone());
        for r in 1..=horizon {
            let mut next = cur.clone();
            // Processes asleep now but awake within the drop window: the
            // set Equation 1 measures. Counted once per round, maintained
            // incrementally; new sleep events are admitted only while it
            // stays within the envelope.
            let mut dropped = next
                .iter()
                .zip(&last_awake)
                .filter(|&(&a, &la)| !a && la + opts.drop_window >= r)
                .count();
            // The envelope cap is normalized by the recently-awake count —
            // the generator's stand-in for Equation 1's `|H_{r−η,r−1}|` —
            // not by `n`, so low-participation stretches stay bounded too.
            // Like min_awake, rounding is guarded: any positive fraction
            // admits at least one concurrent sleeper, else small systems
            // would silently produce zero churn.
            let recently_awake = last_awake
                .iter()
                .filter(|&&la| la + opts.drop_window >= r)
                .count();
            let max_dropped = if dropped_frac <= 0.0 {
                0
            } else {
                (((recently_awake as f64) * dropped_frac).floor() as usize).max(1)
            };
            // Visit processes in a fresh random order so envelope slots
            // are not biased toward low indices when the cap binds.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &p in &order {
                if next[p] {
                    if dropped < max_dropped && rng.random_bool(sleep_prob.clamp(0.0, 1.0)) {
                        next[p] = false;
                        dropped += 1;
                    }
                } else if rng.random_bool(opts.wake_prob.clamp(0.0, 1.0)) {
                    next[p] = true;
                    if last_awake[p] + opts.drop_window >= r {
                        dropped -= 1;
                    }
                }
            }
            // Enforce the floor by waking random sleepers.
            let mut awake_count = next.iter().filter(|&&a| a).count();
            while awake_count < min_awake {
                let idx = rng.random_range(0..n);
                if !next[idx] {
                    next[idx] = true;
                    awake_count += 1;
                }
            }
            for (p, &a) in next.iter().enumerate() {
                if a {
                    last_awake[p] = r;
                }
            }
            awake.push(next.clone());
            cur = next;
        }
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// A mass-sleep incident: a fraction `frac` of the processes (the
    /// highest-numbered ones) are asleep during rounds `[from, to]` —
    /// the May-2023 Ethereum scenario from the introduction.
    pub fn mass_sleep(n: usize, horizon: u64, frac: f64, from: u64, to: u64) -> Schedule {
        let sleepers = ((n as f64) * frac.clamp(0.0, 1.0)).floor() as usize;
        let awake = (0..=horizon)
            .map(|r| {
                (0..n)
                    .map(|p| !((from..=to).contains(&r) && p >= n - sleepers))
                    .collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// Adversarially-paced churn: a group of `⌊γ·n⌋` processes sleeps for
    /// exactly `eta` rounds, then wakes as the next group (round-robin)
    /// goes to sleep.
    ///
    /// This is the worst-case pattern for the expiration mechanism: at
    /// every round, a full `γ` fraction of the recently-awake processes
    /// is asleep with **unexpired** stale votes, maximising the perceived
    /// participation inflation that the adjusted failure ratio `β̃` of
    /// Section 2.3 prices in. Used by the empirical Figure-1 boundary.
    pub fn rotating_sleep(n: usize, horizon: u64, gamma: f64, eta: u64) -> Schedule {
        let group = ((n as f64) * gamma.clamp(0.0, 0.9)).floor() as usize;
        let eta = eta.max(1);
        let awake = (0..=horizon)
            .map(|r| {
                if group == 0 {
                    return vec![true; n];
                }
                let phase = (r / eta) as usize;
                let start = (phase * group) % n;
                (0..n)
                    .map(|p| {
                        // Sleeping window [start, start+group) cyclically.
                        let offset = (p + n - start) % n;
                        offset >= group
                    })
                    .collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// Oscillating participation: the awake fraction swings between
    /// `min_frac` and 1.0 with the given period (diurnal pattern).
    pub fn oscillating(n: usize, horizon: u64, min_frac: f64, period: u64) -> Schedule {
        let period = period.max(2);
        let awake = (0..=horizon)
            .map(|r| {
                let phase = (r % period) as f64 / period as f64 * std::f64::consts::TAU;
                let frac = min_frac + (1.0 - min_frac) * (0.5 + 0.5 * phase.cos());
                let awake_count = ((n as f64) * frac).round().max(1.0) as usize;
                (0..n).map(|p| p < awake_count).collect()
            })
            .collect();
        Schedule {
            n,
            horizon,
            awake,
            corrupt_from: vec![None; n],
            corrupt_until: vec![None; n],
        }
    }

    /// Marks `p` as corrupted from round `from` onward (growing
    /// adversary). Corrupting at round 0 models a static adversary.
    /// Returns `self` for chaining.
    #[must_use]
    pub fn with_corrupted(mut self, p: ProcessId, from: Round) -> Schedule {
        self.corrupt_from[p.index()] = Some(match self.corrupt_from[p.index()] {
            // Growing adversary: corruption can only move earlier, never
            // be revoked.
            Some(existing) => existing.min(from.as_u64()),
            None => from.as_u64(),
        });
        // Unbounded corruption supersedes any previously configured
        // recovery window — "never revoked" must win over an earlier
        // `with_corrupted_window` call on the same process.
        self.corrupt_until[p.index()] = None;
        self
    }

    /// Marks `p` as corrupted for the round window `[from, until)` only:
    /// Byzantine at `from`, honest again from `until` on. This steps
    /// outside the paper's growing-adversary model (`B_r ⊆ B_{r+1}`) —
    /// it exists for corruption-churn experiments, where a machine is
    /// compromised, cleaned, and rejoins as a well-behaved process. Its
    /// decisions made while corrupted do not count as honest decisions
    /// anywhere (monitors skip them).
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` (an empty window is no corruption).
    #[must_use]
    pub fn with_corrupted_window(mut self, p: ProcessId, from: Round, until: Round) -> Schedule {
        assert!(until > from, "corruption window must be non-empty");
        let idx = p.index();
        if let (Some(existing), None) = (self.corrupt_from[idx], self.corrupt_until[idx]) {
            // `p` is already unboundedly corrupted: a window cannot revoke
            // that ("never revoked" wins in either call order) — at most
            // it moves the onset earlier.
            self.corrupt_from[idx] = Some(existing.min(from.as_u64()));
            return self;
        }
        self.corrupt_from[idx] = Some(from.as_u64());
        self.corrupt_until[idx] = Some(until.as_u64());
        self
    }

    /// Corrupts the `f` highest-numbered processes from round 0 (the
    /// common static-adversary setup).
    #[must_use]
    pub fn with_static_byzantine(mut self, f: usize) -> Schedule {
        let n = self.n;
        for p in n.saturating_sub(f)..n {
            self.corrupt_from[p] = Some(0);
            self.corrupt_until[p] = None; // static = never recovers
        }
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The last round covered.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Whether well-behaved process `p` is awake at (the beginning of)
    /// round `r`. Rounds beyond the horizon repeat the final row.
    pub fn is_awake(&self, p: ProcessId, r: Round) -> bool {
        let row = (r.as_u64().min(self.horizon)) as usize;
        self.awake[row][p.index()]
    }

    /// Whether `p` is Byzantine at round `r`.
    pub fn is_byzantine(&self, p: ProcessId, r: Round) -> bool {
        match self.corrupt_from[p.index()] {
            Some(from) => {
                r.as_u64() >= from
                    && self.corrupt_until[p.index()]
                        .map(|until| r.as_u64() < until)
                        .unwrap_or(true)
            }
            None => false,
        }
    }

    /// `H_r`: well-behaved processes awake at round `r`.
    pub fn honest_awake(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_awake(p, r) && !self.is_byzantine(p, r))
            .collect()
    }

    /// `B_r`: Byzantine processes at round `r` (they never sleep).
    pub fn byzantine(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_byzantine(p, r))
            .collect()
    }

    /// `O_r = H_r ∪ B_r`.
    pub fn online(&self, r: Round) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|&p| self.is_byzantine(p, r) || self.is_awake(p, r))
            .collect()
    }

    /// `H_{s,r} = ∪_{s ≤ r' ≤ r} H_{r'}` (the union of honest-awake sets
    /// over a window, Section 2.3).
    pub fn honest_awake_union(&self, s: Round, r: Round) -> Vec<ProcessId> {
        let mut seen = vec![false; self.n];
        let mut r_cur = s;
        while r_cur <= r {
            for p in self.honest_awake(r_cur) {
                seen[p.index()] = true;
            }
            r_cur = r_cur.next();
        }
        ProcessId::all(self.n).filter(|p| seen[p.index()]).collect()
    }

    /// `O_{s,r} = ∪_{s ≤ r' ≤ r} O_{r'}`.
    pub fn online_union(&self, s: Round, r: Round) -> Vec<ProcessId> {
        let mut seen = vec![false; self.n];
        let mut r_cur = s;
        while r_cur <= r {
            for p in self.online(r_cur) {
                seen[p.index()] = true;
            }
            r_cur = r_cur.next();
        }
        ProcessId::all(self.n).filter(|p| seen[p.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schedule_everyone_always_awake() {
        let s = Schedule::full(4, 10);
        for r in 0..=10 {
            assert_eq!(s.honest_awake(Round::new(r)).len(), 4);
            assert!(s.byzantine(Round::new(r)).is_empty());
        }
    }

    #[test]
    fn static_byzantine_marks_tail_processes() {
        let s = Schedule::full(6, 5).with_static_byzantine(2);
        let byz = s.byzantine(Round::ZERO);
        assert_eq!(byz, vec![ProcessId::new(4), ProcessId::new(5)]);
        assert_eq!(s.honest_awake(Round::ZERO).len(), 4);
        // O_r includes everyone (Byzantine never sleep).
        assert_eq!(s.online(Round::ZERO).len(), 6);
    }

    #[test]
    fn growing_adversary_is_monotone() {
        let s = Schedule::full(4, 20)
            .with_corrupted(ProcessId::new(1), Round::new(5))
            .with_corrupted(ProcessId::new(2), Round::new(10));
        for r in 0..20u64 {
            let now = s.byzantine(Round::new(r)).len();
            let next = s.byzantine(Round::new(r + 1)).len();
            assert!(next >= now, "B_r shrank at {r}");
        }
        assert!(!s.is_byzantine(ProcessId::new(1), Round::new(4)));
        assert!(s.is_byzantine(ProcessId::new(1), Round::new(5)));
    }

    #[test]
    fn corruption_never_revoked() {
        let s = Schedule::full(2, 10)
            .with_corrupted(ProcessId::new(0), Round::new(3))
            .with_corrupted(ProcessId::new(0), Round::new(8)); // later mark ignored
        assert!(s.is_byzantine(ProcessId::new(0), Round::new(3)));
        let s2 = Schedule::full(2, 10)
            .with_corrupted(ProcessId::new(0), Round::new(8))
            .with_corrupted(ProcessId::new(0), Round::new(3)); // earlier wins
        assert!(s2.is_byzantine(ProcessId::new(0), Round::new(3)));
    }

    #[test]
    fn corruption_window_ends() {
        let s = Schedule::full(4, 20).with_corrupted_window(
            ProcessId::new(2),
            Round::new(5),
            Round::new(12),
        );
        assert!(!s.is_byzantine(ProcessId::new(2), Round::new(4)));
        assert!(s.is_byzantine(ProcessId::new(2), Round::new(5)));
        assert!(s.is_byzantine(ProcessId::new(2), Round::new(11)));
        assert!(!s.is_byzantine(ProcessId::new(2), Round::new(12)));
        assert!(s.honest_awake(Round::new(12)).contains(&ProcessId::new(2)));
        // Unbounded corruption stays unbounded.
        let s = Schedule::full(4, 20).with_corrupted(ProcessId::new(1), Round::new(5));
        assert!(s.is_byzantine(ProcessId::new(1), Round::new(20)));
    }

    #[test]
    fn unbounded_corruption_supersedes_window() {
        let p = ProcessId::new(1);
        let s = Schedule::full(4, 20)
            .with_corrupted_window(p, Round::new(5), Round::new(10))
            .with_corrupted(p, Round::ZERO);
        // "Never revoked" wins: the earlier window's recovery is cleared.
        assert!(s.is_byzantine(p, Round::new(15)));
        let s = Schedule::full(4, 20)
            .with_corrupted_window(p, Round::new(5), Round::new(10))
            .with_static_byzantine(4);
        assert!(s.is_byzantine(p, Round::new(15)));
        // And in the other call order: a window cannot revoke unbounded
        // corruption (it can only move the onset earlier).
        let s = Schedule::full(4, 20)
            .with_corrupted(p, Round::new(3))
            .with_corrupted_window(p, Round::new(5), Round::new(10));
        assert!(s.is_byzantine(p, Round::new(3)));
        assert!(s.is_byzantine(p, Round::new(15)));
        let s = Schedule::full(4, 20)
            .with_static_byzantine(4)
            .with_corrupted_window(p, Round::new(5), Round::new(10));
        assert!(s.is_byzantine(p, Round::ZERO));
        assert!(s.is_byzantine(p, Round::new(15)));
    }

    #[test]
    fn mass_sleep_window() {
        let s = Schedule::mass_sleep(10, 20, 0.6, 5, 8);
        assert_eq!(s.honest_awake(Round::new(4)).len(), 10);
        assert_eq!(s.honest_awake(Round::new(5)).len(), 4);
        assert_eq!(s.honest_awake(Round::new(8)).len(), 4);
        assert_eq!(s.honest_awake(Round::new(9)).len(), 10);
    }

    #[test]
    fn random_churn_respects_floor_and_determinism() {
        let opts = ChurnOptions {
            min_awake_frac: 0.3,
            ..Default::default()
        };
        let a = Schedule::random_churn(20, 50, 0.2, 7, &opts);
        let b = Schedule::random_churn(20, 50, 0.2, 7, &opts);
        for r in 0..=50 {
            let round = Round::new(r);
            assert_eq!(
                a.honest_awake(round),
                b.honest_awake(round),
                "nondeterministic"
            );
            assert!(a.honest_awake(round).len() >= 6, "floor violated at {r}");
        }
        // Some churn actually happened.
        let changes: usize = (1..=50)
            .map(|r| {
                let prev = a.honest_awake(Round::new(r - 1));
                let cur = a.honest_awake(Round::new(r));
                prev.iter().filter(|p| !cur.contains(p)).count()
            })
            .sum();
        assert!(changes > 0, "no churn generated");
    }

    #[test]
    fn random_churn_respects_drop_envelope() {
        // Aggressive sleep pressure against a tight envelope: at every
        // round, the recently-awake-but-asleep set (the quantity
        // Equation 1 bounds) must stay within
        // max(1, ⌊frac · |recently awake|⌋).
        let opts = ChurnOptions {
            min_awake_frac: 0.2,
            wake_prob: 0.3,
            max_dropped_frac: 0.1,
            drop_window: 6,
            ..Default::default()
        };
        for (n, seed) in [(20usize, 1u64), (15, 2), (6, 3)] {
            let s = Schedule::random_churn(n, 80, 0.3, seed, &opts);
            for r in 1..=80u64 {
                let lo = Round::new(r.saturating_sub(opts.drop_window));
                let hi = Round::new(r - 1);
                let recent = s.honest_awake_union(lo, hi);
                let now = s.honest_awake(Round::new(r));
                let dropped = recent.iter().filter(|p| !now.contains(p)).count();
                let cap = ((recent.len() as f64) * opts.max_dropped_frac)
                    .floor()
                    .max(1.0);
                assert!(
                    dropped as f64 <= cap,
                    "n={n} seed={seed} round {r}: {dropped} dropped exceeds cap {cap}"
                );
            }
        }
        // A disabled envelope (frac = 1.0) with heavy sleep pressure
        // produces more churn than the tight one: the cap is real.
        let free = ChurnOptions {
            max_dropped_frac: 1.0,
            ..opts.clone()
        };
        let total = |s: &Schedule| -> usize {
            (1..=80u64)
                .map(|r| {
                    let prev = s.honest_awake(Round::new(r - 1));
                    let cur = s.honest_awake(Round::new(r));
                    prev.iter().filter(|p| !cur.contains(p)).count()
                })
                .sum()
        };
        let capped = Schedule::random_churn(20, 80, 0.3, 1, &opts);
        let uncapped = Schedule::random_churn(20, 80, 0.3, 1, &free);
        assert!(total(&uncapped) > total(&capped), "envelope had no effect");
    }

    #[test]
    fn rotating_sleep_keeps_constant_stale_mass() {
        let s = Schedule::rotating_sleep(10, 40, 0.2, 4);
        for r in 0..=40 {
            assert_eq!(s.honest_awake(Round::new(r)).len(), 8, "round {r}");
        }
        // The sleeping group changes every η rounds.
        let g0 = s.honest_awake(Round::new(0));
        let g1 = s.honest_awake(Round::new(4));
        assert_ne!(g0, g1);
        // γ = 0 degenerates to full participation.
        let full = Schedule::rotating_sleep(10, 10, 0.0, 4);
        assert_eq!(full.honest_awake(Round::new(5)).len(), 10);
    }

    #[test]
    fn oscillating_hits_min_and_max() {
        let s = Schedule::oscillating(10, 40, 0.4, 8);
        let counts: Vec<usize> = (0..=40)
            .map(|r| s.honest_awake(Round::new(r)).len())
            .collect();
        assert!(counts.contains(&10));
        assert!(counts.iter().any(|&c| c <= 5));
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn unions_accumulate() {
        let s = Schedule::mass_sleep(4, 10, 0.5, 3, 6);
        // During the incident only p0, p1 are awake, but the union over
        // [0, 5] still contains everyone.
        assert_eq!(s.honest_awake(Round::new(4)).len(), 2);
        assert_eq!(s.honest_awake_union(Round::ZERO, Round::new(5)).len(), 4);
        assert_eq!(s.online_union(Round::new(3), Round::new(4)).len(), 2);
    }

    #[test]
    fn beyond_horizon_repeats_last_row() {
        let s = Schedule::mass_sleep(4, 5, 0.5, 5, 5);
        assert_eq!(s.honest_awake(Round::new(5)).len(), 2);
        // Round 6 is past the horizon: repeats round 5's row.
        assert_eq!(s.honest_awake(Round::new(6)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn custom_rejects_ragged() {
        let _ = Schedule::custom(vec![vec![true, true], vec![true]]);
    }
}
