//! Named, pre-configured scenarios.
//!
//! The examples, the CLI and several experiments all want the same handful
//! of set-pieces (the paper's attack, the Ethereum incident, a healthy
//! baseline…). A [`Scenario`] packages parameters + schedule + adversary +
//! window so callers get a one-liner:
//!
//! ```
//! use st_sim::scenario::Scenario;
//! let report = Scenario::PartitionAttackVanilla.run(42);
//! assert!(!report.is_safe()); // the Section-1 attack lands
//! let report = Scenario::PartitionAttackExtended.run(42);
//! assert!(report.is_safe()); // Theorem 2 holds
//! ```

use crate::adversary::{
    Adversary, BlackoutAdversary, PartitionAttacker, ReorgAttacker, SilentAdversary,
};
use crate::builder::SimBuilder;
use crate::env::Timeline;
use crate::monitor::SimReport;
use crate::runner::SimConfig;
use crate::schedule::Schedule;
use st_types::{Params, Round, TypesError};

/// Unwraps a preset's parameter build. Every [`Scenario`] arm feeds
/// constants chosen to satisfy the [`Params`] validation rules, and the
/// `all_presets_build` test exercises each arm.
fn preset(params: Result<Params, TypesError>) -> Params {
    params.expect("scenario presets are statically valid") // stlint::allow(panic, reason = "preset parameters are compile-time constants validated by the all_presets_build test")
}

/// Timeline preset: `k` asynchronous spells of `pi` rounds each,
/// separated by `spacing` synchronous rounds (which also precede the
/// first spell). The paper's resilience claim quantifies over *every*
/// spell — this is the canonical multi-window shape the claim is
/// exercised against.
///
/// # Panics
///
/// Panics if `pi == 0`, `spacing == 0` or `k == 0`.
pub fn alternating(pi: u64, spacing: u64, k: usize) -> Timeline {
    assert!(pi > 0 && spacing > 0 && k > 0, "degenerate alternation");
    let mut t = Timeline::synchronous();
    let mut start = spacing;
    for _ in 0..k {
        t = t.asynchronous(Round::new(start), pi);
        start += pi + spacing;
    }
    t
}

/// Timeline preset: partial synchrony with a global stabilisation time —
/// bounded-delay delivery (`Δ = delta`) from round 1 up to and including
/// round `gst_round − 1`, fully synchronous from `gst_round` on.
///
/// # Panics
///
/// Panics if `gst_round < 2`.
pub fn gst(delta: u64, gst_round: Round) -> Timeline {
    assert!(
        gst_round.as_u64() >= 2,
        "GST must leave at least one pre-GST round"
    );
    Timeline::synchronous().bounded_delay(Round::new(1), gst_round.as_u64() - 1, delta)
}

/// A named set-piece configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Scenario {
    /// Healthy synchronous run: n = 12, η = 4, no adversary, tx workload.
    Healthy,
    /// The May-2023 Ethereum incident: 60% offline for half the run.
    EthereumIncident,
    /// The Section-1 attack against vanilla MMR (η = 0, π = 4 partition):
    /// agreement breaks.
    PartitionAttackVanilla,
    /// The same attack against the extended protocol (η = 6 > π = 4):
    /// safety holds.
    PartitionAttackExtended,
    /// The strict Definition-5 reorg attack against vanilla MMR (f = 3 of
    /// 10, one asynchronous round): `D_ra` is reverted.
    ReorgAttackVanilla,
    /// The reorg attack against the extended protocol (η = 4 > π = 1).
    ReorgAttackExtended,
    /// A 3-round total blackout under the extended protocol: safe, heals
    /// in one view.
    BlackoutExtended,
    /// Two 4-round partition spells separated by synchrony, against
    /// `η = 6` ([`alternating`]): the protocol recovers after **every**
    /// spell — the paper's resilience claim in its multi-window form.
    AlternatingAsynchrony,
    /// Partial synchrony ([`gst`]): bounded-delay delivery (`Δ = 2`)
    /// until GST at round 21, synchronous after — safe throughout, fully
    /// healed after GST.
    PartialSynchrony,
}

impl Scenario {
    /// All scenarios, for enumeration in CLIs and docs.
    pub const ALL: [Scenario; 9] = [
        Scenario::Healthy,
        Scenario::EthereumIncident,
        Scenario::PartitionAttackVanilla,
        Scenario::PartitionAttackExtended,
        Scenario::ReorgAttackVanilla,
        Scenario::ReorgAttackExtended,
        Scenario::BlackoutExtended,
        Scenario::AlternatingAsynchrony,
        Scenario::PartialSynchrony,
    ];

    /// The scenario's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Healthy => "healthy",
            Scenario::EthereumIncident => "ethereum-incident",
            Scenario::PartitionAttackVanilla => "partition-vanilla",
            Scenario::PartitionAttackExtended => "partition-extended",
            Scenario::ReorgAttackVanilla => "reorg-vanilla",
            Scenario::ReorgAttackExtended => "reorg-extended",
            Scenario::BlackoutExtended => "blackout-extended",
            Scenario::AlternatingAsynchrony => "alternating-async",
            Scenario::PartialSynchrony => "partial-synchrony",
        }
    }

    /// Looks a scenario up by its CLI name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// One-line description for help output.
    pub fn describe(&self) -> &'static str {
        match self {
            Scenario::Healthy => "synchronous baseline: n=12, η=4, tx workload, no adversary",
            Scenario::EthereumIncident => "60% of processes offline for rounds 20–60 (n=20)",
            Scenario::PartitionAttackVanilla => {
                "4-round delivery partition vs vanilla MMR — agreement breaks"
            }
            Scenario::PartitionAttackExtended => "the same partition vs η=6 — Theorem 2 holds",
            Scenario::ReorgAttackVanilla => {
                "1 async round, f=3 Byzantine genesis-fork votes vs vanilla — D_ra reverted"
            }
            Scenario::ReorgAttackExtended => "the same reorg vs η=4 — D_ra protected",
            Scenario::BlackoutExtended => "3-round total blackout vs η=5 — safe, heals in one view",
            Scenario::AlternatingAsynchrony => {
                "two 4-round partition spells vs η=6 — recovers after every spell"
            }
            Scenario::PartialSynchrony => "bounded-delay Δ=2 until GST at round 21 vs η=4 — safe",
        }
    }

    /// The expected outcome, as a `(safe, resilient)` pair, for
    /// documentation and self-tests.
    pub fn expected(&self) -> (bool, bool) {
        match self {
            Scenario::Healthy
            | Scenario::EthereumIncident
            | Scenario::PartitionAttackExtended
            | Scenario::ReorgAttackExtended
            | Scenario::BlackoutExtended
            | Scenario::AlternatingAsynchrony
            | Scenario::PartialSynchrony => (true, true),
            Scenario::PartitionAttackVanilla => (false, true), // forward divergence only
            Scenario::ReorgAttackVanilla => (false, false),
        }
    }

    /// The scenario as a pre-loaded [`SimBuilder`] — the one-line entry
    /// point that still composes: chain further builder calls (extra
    /// observers, a different horizon) before building.
    ///
    /// ```
    /// use st_sim::scenario::Scenario;
    /// let report = Scenario::PartitionAttackExtended
    ///     .builder(42)
    ///     .build()
    ///     .expect("scenario presets are valid")
    ///     .run();
    /// assert!(report.is_safe());
    /// ```
    pub fn builder(&self, seed: u64) -> SimBuilder {
        let (params, schedule, adversary, timeline, horizon): (
            Params,
            Schedule,
            Box<dyn Adversary>,
            Option<Timeline>,
            u64,
        ) = match self {
            Scenario::Healthy => (
                preset(Params::builder(12).expiration(4).build()),
                Schedule::full(12, 40),
                Box::new(SilentAdversary),
                None,
                40,
            ),
            Scenario::EthereumIncident => (
                preset(Params::builder(20).build()),
                Schedule::mass_sleep(20, 80, 0.6, 20, 60),
                Box::new(SilentAdversary),
                None,
                80,
            ),
            Scenario::PartitionAttackVanilla => (
                preset(Params::builder(10).expiration(0).build()),
                Schedule::full(10, 30),
                Box::new(PartitionAttacker::new()),
                Some(Timeline::synchronous().asynchronous(Round::new(12), 4)),
                30,
            ),
            Scenario::PartitionAttackExtended => (
                preset(Params::builder(10).expiration(6).build()),
                Schedule::full(10, 30),
                Box::new(PartitionAttacker::new()),
                Some(Timeline::synchronous().asynchronous(Round::new(12), 4)),
                30,
            ),
            Scenario::ReorgAttackVanilla => (
                preset(Params::builder(10).expiration(0).build()),
                Schedule::full(10, 26).with_static_byzantine(3),
                Box::new(ReorgAttacker::new()),
                Some(Timeline::synchronous().asynchronous(Round::new(12), 1)),
                26,
            ),
            Scenario::ReorgAttackExtended => (
                preset(Params::builder(10).expiration(4).build()),
                Schedule::full(10, 26).with_static_byzantine(3),
                Box::new(ReorgAttacker::new()),
                Some(Timeline::synchronous().asynchronous(Round::new(12), 1)),
                26,
            ),
            Scenario::BlackoutExtended => (
                preset(Params::builder(10).expiration(5).build()),
                Schedule::full(10, 32),
                Box::new(BlackoutAdversary),
                Some(Timeline::synchronous().asynchronous(Round::new(12), 3)),
                32,
            ),
            Scenario::AlternatingAsynchrony => (
                preset(Params::builder(10).expiration(6).build()),
                Schedule::full(10, 44),
                Box::new(PartitionAttacker::new()),
                Some(alternating(4, 11, 2)),
                44,
            ),
            Scenario::PartialSynchrony => (
                preset(Params::builder(10).expiration(4).build()),
                Schedule::full(10, 40),
                Box::new(SilentAdversary),
                Some(gst(2, Round::new(21))),
                40,
            ),
        };
        let mut config = SimConfig::new(params, seed).horizon(horizon).txs_every(4);
        if let Some(t) = timeline {
            config = config.timeline(t);
        }
        SimBuilder::from_config(config)
            .schedule(schedule)
            .adversary_boxed(adversary)
    }

    /// Builds and runs the scenario under `seed` (shorthand for
    /// [`Scenario::builder`]` + build + run`).
    pub fn run(&self, seed: u64) -> SimReport {
        self.builder(seed)
            .build()
            .expect("scenario presets are valid") // stlint::allow(panic, reason = "preset schedules and timelines are compile-time constants validated by the all_presets_build test")
            .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::by_name(s.name()), Some(s));
            assert!(!s.describe().is_empty());
        }
        assert_eq!(Scenario::by_name("nonsense"), None);
    }

    #[test]
    fn all_presets_build() {
        // Backs the allow(panic) annotations on `preset` and
        // `Scenario::run`: every arm's constants pass validation.
        for s in Scenario::ALL {
            s.builder(1).build().unwrap();
        }
    }

    #[test]
    fn every_scenario_meets_its_expected_outcome() {
        for s in Scenario::ALL {
            let report = s.run(7);
            let (safe, resilient) = s.expected();
            assert_eq!(report.is_safe(), safe, "{} safety mismatch", s.name());
            assert_eq!(
                report.is_asynchrony_resilient(),
                resilient,
                "{} resilience mismatch",
                s.name()
            );
        }
    }

    #[test]
    fn alternating_scenario_recovers_after_every_spell() {
        let report = Scenario::AlternatingAsynchrony.run(7);
        assert_eq!(report.recoveries.len(), 2);
        assert!(report.recovered_after_every_window());
        for rec in &report.recoveries {
            assert_eq!(rec.violations, 0);
        }
    }

    #[test]
    fn partial_synchrony_scenario_heals_after_gst() {
        let report = Scenario::PartialSynchrony.run(7);
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].kind, "bounded-delay");
        assert_eq!(report.recoveries[0].end, Round::new(20));
        assert!(report.recovered_after_every_window());
    }

    #[test]
    fn preset_shapes() {
        let t = alternating(4, 11, 2);
        assert_eq!(t.windows().len(), 2);
        assert_eq!(t.windows()[0].start(), Round::new(11));
        assert_eq!(t.windows()[0].end(), Round::new(14));
        assert_eq!(t.windows()[1].start(), Round::new(26));
        let t = gst(2, Round::new(21));
        assert_eq!(t.windows().len(), 1);
        assert_eq!(t.windows()[0].start(), Round::new(1));
        assert_eq!(t.windows()[0].end(), Round::new(20));
        assert_eq!(
            t.kind_at(Round::new(10)),
            crate::SegmentKind::BoundedDelay { delta: 2 }
        );
        assert_eq!(t.kind_at(Round::new(21)), crate::SegmentKind::Synchronous);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = Scenario::PartitionAttackVanilla.run(5);
        let b = Scenario::PartitionAttackVanilla.run(5);
        assert_eq!(a.safety_violations.len(), b.safety_violations.len());
        assert_eq!(a.final_decided_height, b.final_decided_height);
    }
}
