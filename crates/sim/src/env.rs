//! The round-indexed environment model.
//!
//! The paper's guarantees are stated against an environment that switches
//! between **synchrony** and adversary-scheduled **asynchrony**, and its
//! central claim — asynchrony *resilience* — is about recovering after
//! **every** asynchronous spell, not just one. A [`Timeline`] makes that
//! environment first-class data instead of a single special-cased window:
//!
//! * a run is synchronous by default;
//! * any number of non-overlapping [`EnvWindow`]s override the default
//!   with [`SegmentKind::Asynchronous`] (the adversary chooses delivery,
//!   as in Section 2.1) or [`SegmentKind::BoundedDelay`] (every message
//!   arrives within `Δ` rounds of being sent — the partial-synchrony
//!   regime; per-(message, receiver) delays are drawn deterministically
//!   from the run seed via [`bounded_delay_of`], or overridden by the
//!   adversary within the bound);
//! * [`Partition`] events overlay any segment for a window: message
//!   reachability is restricted to same-group (sender, receiver) pairs,
//!   and cross-group messages are queued until the partition heals —
//!   messages are delayed, never lost (footnote 2's retention).
//!
//! Each window and partition is a *disruption*: the monitors attach one
//! Definition-5 check (against `D_ra` of that window's last synchronous
//! round) and one recovery record per disruption, which is how a
//! multi-spell run demonstrates the paper's "recovers after every spell"
//! claim quantitatively.

use st_types::{ProcessId, Round};

/// The delivery regime of one timeline segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// Every message sent in rounds `≤ r` reaches every awake process in
    /// the receive phase of round `r` (the paper's synchronous rounds).
    Synchronous,
    /// The adversary chooses, per receiver, an arbitrary subset of the
    /// available messages (the paper's asynchronous rounds).
    Asynchronous,
    /// Every message is delivered within `delta` rounds of being sent;
    /// the delay of each (message, receiver) pair inside `0..=delta` is
    /// chosen deterministically from the run seed, or by the adversary
    /// within the bound. `delta = 0` behaves synchronously.
    BoundedDelay {
        /// The delivery bound `Δ`, in rounds.
        delta: u64,
    },
}

/// A non-synchronous window `[start, end]` on the round axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvWindow {
    start: Round,
    end: Round,
    kind: SegmentKind,
}

impl EnvWindow {
    /// First round of the window.
    pub fn start(&self) -> Round {
        self.start
    }

    /// Last round of the window.
    pub fn end(&self) -> Round {
        self.end
    }

    /// The window's delivery regime.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// The last synchronous round before the window (`ra` in the paper's
    /// notation; windows never start at round 0).
    pub fn ra(&self) -> Round {
        self.start
            .prev()
            .expect("window start > 0 enforced at build") // stlint::allow(panic, reason = "Timeline window constructors reject windows starting at round 0, so prev() always exists")
    }

    /// Window length in rounds (always ≥ 1 — the builders reject empty
    /// windows, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.end.as_u64() - self.start.as_u64() + 1
    }

    /// Whether `r` lies inside the window.
    pub fn contains(&self, r: Round) -> bool {
        r.in_window(self.start, self.end)
    }
}

/// A partition event: for rounds `[start, end]`, a message from sender
/// `s` can reach receiver `p` only if both lie in the same group.
/// Processes not listed in any group form one implicit residual group
/// (so a single explicit group already splits the system in two).
/// Cross-group messages are queued, not lost: they arrive once the
/// partition heals (or the adversary delivers them in a later
/// asynchronous round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    start: Round,
    end: Round,
    groups: Vec<Vec<ProcessId>>,
}

impl Partition {
    /// First round of the partition window.
    pub fn start(&self) -> Round {
        self.start
    }

    /// Last round of the partition window.
    pub fn end(&self) -> Round {
        self.end
    }

    /// The explicit groups (the residual group is implicit).
    pub fn groups(&self) -> &[Vec<ProcessId>] {
        &self.groups
    }

    /// Whether `r` lies inside the partition window.
    pub fn contains(&self, r: Round) -> bool {
        r.in_window(self.start, self.end)
    }

    /// Dense group lookup for a system of `n` processes: `map[p] = g`,
    /// with the residual group as 0 and explicit groups numbered from 1.
    /// Built once per round by the round loop so reachability checks are
    /// two array reads per (sender, receiver) pair.
    pub fn group_map(&self, n: usize) -> Vec<u32> {
        let mut map = vec![0u32; n];
        for (g, group) in self.groups.iter().enumerate() {
            for p in group {
                map[p.index()] = g as u32 + 1;
            }
        }
        map
    }

    /// Whether `a` can exchange messages with `b` under this partition.
    pub fn reachable(&self, a: ProcessId, b: ProcessId) -> bool {
        self.group_of(a) == self.group_of(b)
    }

    fn group_of(&self, p: ProcessId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&p))
    }
}

/// The round-indexed environment model: synchronous by default, with
/// non-overlapping [`EnvWindow`]s and [`Partition`] overlays.
///
/// Built with the consuming builder methods; queried per round by the
/// round loop via [`Timeline::view_at`].
///
/// ```
/// use st_sim::{Timeline, SegmentKind};
/// use st_types::Round;
///
/// let t = Timeline::synchronous()
///     .asynchronous(Round::new(10), 4)
///     .bounded_delay(Round::new(20), 6, 2);
/// assert_eq!(t.kind_at(Round::new(9)), SegmentKind::Synchronous);
/// assert_eq!(t.kind_at(Round::new(12)), SegmentKind::Asynchronous);
/// assert_eq!(t.kind_at(Round::new(21)), SegmentKind::BoundedDelay { delta: 2 });
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    windows: Vec<EnvWindow>,
    partitions: Vec<Partition>,
}

/// One disruption (window or partition) for monitoring purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disruption {
    /// First disrupted round.
    pub start: Round,
    /// Last disrupted round.
    pub end: Round,
    /// `"async"`, `"bounded-delay"` or `"partition"`.
    pub label: &'static str,
}

impl Timeline {
    /// The all-synchronous timeline (no windows, no partitions).
    pub fn synchronous() -> Timeline {
        Timeline::default()
    }

    /// Adds an asynchronous window of `pi` rounds beginning at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `pi == 0`, `start` is round 0, or the window overlaps an
    /// existing one.
    #[must_use]
    pub fn asynchronous(self, start: Round, pi: u64) -> Timeline {
        self.window(start, pi, SegmentKind::Asynchronous)
    }

    /// Adds a bounded-delay window of `len` rounds beginning at `start`
    /// with delivery bound `delta`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Timeline::asynchronous`].
    #[must_use]
    pub fn bounded_delay(self, start: Round, len: u64, delta: u64) -> Timeline {
        self.window(start, len, SegmentKind::BoundedDelay { delta })
    }

    fn window(mut self, start: Round, len: u64, kind: SegmentKind) -> Timeline {
        assert!(len > 0, "environment window must have positive length");
        assert!(
            start > Round::ZERO,
            "the window must start after at least one synchronous round"
        );
        let window = EnvWindow {
            start,
            end: Round::new(start.as_u64() + len - 1),
            kind,
        };
        assert!(
            !self
                .windows
                .iter()
                .any(|w| w.start <= window.end && window.start <= w.end),
            "environment windows must not overlap"
        );
        self.windows.push(window);
        self.windows.sort_by_key(|w| w.start);
        self
    }

    /// Adds a partition event covering rounds `[start, start + len − 1]`
    /// with the given explicit `groups` (unlisted processes form the
    /// implicit residual group).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `start` is round 0, `groups` is empty, a
    /// process appears in two groups, or the partition overlaps another
    /// partition (overlapping an [`EnvWindow`] is allowed — the overlay
    /// then constrains that window's delivery).
    #[must_use]
    pub fn partition(mut self, start: Round, len: u64, groups: Vec<Vec<ProcessId>>) -> Timeline {
        assert!(len > 0, "partition must have positive length");
        assert!(
            start > Round::ZERO,
            "the partition must start after at least one synchronous round"
        );
        assert!(!groups.is_empty(), "partition needs at least one group");
        let mut seen = st_types::FastSet::default();
        for p in groups.iter().flatten() {
            assert!(seen.insert(*p), "process {p} appears in two groups");
        }
        let part = Partition {
            start,
            end: Round::new(start.as_u64() + len - 1),
            groups,
        };
        assert!(
            !self
                .partitions
                .iter()
                .any(|q| q.start <= part.end && part.start <= q.end),
            "partition events must not overlap each other"
        );
        self.partitions.push(part);
        self.partitions.sort_by_key(|p| p.start);
        self
    }

    /// The configured windows, sorted by start round.
    pub fn windows(&self) -> &[EnvWindow] {
        &self.windows
    }

    /// The configured partition events, sorted by start round.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Whether the timeline has no windows and no partitions.
    pub fn is_fully_synchronous(&self) -> bool {
        self.windows.is_empty() && self.partitions.is_empty()
    }

    /// The window covering round `r`, if any.
    pub fn window_at(&self, r: Round) -> Option<&EnvWindow> {
        self.windows.iter().find(|w| w.contains(r))
    }

    /// The partition event active at round `r`, if any.
    pub fn partition_at(&self, r: Round) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.contains(r))
    }

    /// The delivery regime at round `r`.
    pub fn kind_at(&self, r: Round) -> SegmentKind {
        self.window_at(r)
            .map(|w| w.kind)
            .unwrap_or(SegmentKind::Synchronous)
    }

    /// Every disruption — windows and partitions — sorted by start round.
    /// Monitors attach one Definition-5 check and one recovery record to
    /// each.
    pub fn disruptions(&self) -> Vec<Disruption> {
        let mut out: Vec<Disruption> = self
            .windows
            .iter()
            .map(|w| Disruption {
                start: w.start,
                end: w.end,
                label: match w.kind {
                    SegmentKind::Synchronous => "sync",
                    SegmentKind::Asynchronous => "async",
                    SegmentKind::BoundedDelay { .. } => "bounded-delay",
                },
            })
            .chain(self.partitions.iter().map(|p| Disruption {
                start: p.start,
                end: p.end,
                label: "partition",
            }))
            .collect();
        out.sort_by_key(|d| (d.start, d.end));
        out
    }

    /// Last round of the final disruption, if any — the point after which
    /// the run is expected to fully heal.
    pub fn last_disruption_end(&self) -> Option<Round> {
        self.disruptions().iter().map(|d| d.end).max()
    }

    /// The environment as seen at round `r` (by the round loop and, via
    /// [`crate::AdversaryCtx`], by the adversary).
    pub fn view_at(&self, r: Round) -> EnvView {
        let partitioned = self.partition_at(r).is_some();
        match self.window_at(r) {
            None => EnvView {
                kind: SegmentKind::Synchronous,
                offset: 0,
                remaining: 0,
                global_offset: 0,
                partitioned,
            },
            Some(w) => {
                let offset = r.as_u64() - w.start.as_u64();
                let before: u64 = self
                    .windows
                    .iter()
                    .filter(|v| v.end < w.start)
                    .map(|v| v.len())
                    .sum();
                EnvView {
                    kind: w.kind,
                    offset,
                    remaining: w.end.as_u64() - r.as_u64() + 1,
                    global_offset: before + offset,
                    partitioned,
                }
            }
        }
    }
}

/// What one round of the environment looks like: the current segment and
/// the remaining budget of its window. Replaces the bare `is_async` flag
/// the adversary context used to carry — strategies that act relative to
/// a window (blackout prefixes, scripted plays) read the offsets here and
/// automatically re-arm on every new window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvView {
    /// Delivery regime of the current segment.
    pub kind: SegmentKind,
    /// 0-based index of this round within its window (0 when
    /// synchronous).
    pub offset: u64,
    /// Rounds remaining in the current window, including this one (0 when
    /// synchronous) — the adversary's remaining budget for this spell.
    pub remaining: u64,
    /// Index of this round in the concatenation of *all* window rounds of
    /// the timeline (0 when synchronous) — lets scripted strategies
    /// address a multi-window run with one flat script.
    pub global_offset: u64,
    /// Whether a partition event overlays this round.
    pub partitioned: bool,
}

impl EnvView {
    /// The view of a plain synchronous round.
    pub fn synchronous() -> EnvView {
        EnvView {
            kind: SegmentKind::Synchronous,
            offset: 0,
            remaining: 0,
            global_offset: 0,
            partitioned: false,
        }
    }

    /// Whether the current segment is adversary-scheduled asynchrony.
    pub fn is_async(&self) -> bool {
        self.kind == SegmentKind::Asynchronous
    }

    /// The bounded-delay `Δ`, if the current segment is bounded-delay.
    pub fn delta(&self) -> Option<u64> {
        match self.kind {
            SegmentKind::BoundedDelay { delta } => Some(delta),
            _ => None,
        }
    }
}

/// The deterministic per-(message, receiver) delay of a bounded-delay
/// segment: a value in `0..=delta` derived from the run seed, the
/// message's **global** pool index (stable across
/// [`crate::Network::compact`]) and the receiver — a pure function, so
/// the same message gets the same delay no matter when or how often it
/// is asked, which is what keeps bounded-delay runs byte-reproducible
/// and the naive-delivery equivalence intact.
pub fn bounded_delay_of(seed: u64, msg_index: usize, receiver: ProcessId, delta: u64) -> u64 {
    if delta == 0 {
        return 0;
    }
    // SplitMix64 finalizer over a mix of the three coordinates.
    let mut z = seed
        .wrapping_add((msg_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(receiver.as_u32()).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % (delta + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_timeline_is_empty() {
        let t = Timeline::synchronous();
        assert!(t.is_fully_synchronous());
        assert_eq!(t.kind_at(Round::new(5)), SegmentKind::Synchronous);
        assert_eq!(t.view_at(Round::new(5)), EnvView::synchronous());
        assert!(t.disruptions().is_empty());
        assert_eq!(t.last_disruption_end(), None);
    }

    #[test]
    fn windows_partition_the_round_axis() {
        let t = Timeline::synchronous()
            .asynchronous(Round::new(10), 3)
            .bounded_delay(Round::new(20), 4, 2);
        assert_eq!(t.kind_at(Round::new(9)), SegmentKind::Synchronous);
        assert_eq!(t.kind_at(Round::new(10)), SegmentKind::Asynchronous);
        assert_eq!(t.kind_at(Round::new(12)), SegmentKind::Asynchronous);
        assert_eq!(t.kind_at(Round::new(13)), SegmentKind::Synchronous);
        assert_eq!(
            t.kind_at(Round::new(23)),
            SegmentKind::BoundedDelay { delta: 2 }
        );
        assert_eq!(t.kind_at(Round::new(24)), SegmentKind::Synchronous);
        assert_eq!(t.windows().len(), 2);
        assert_eq!(t.windows()[0].ra(), Round::new(9));
        assert_eq!(t.windows()[0].len(), 3);
        assert_eq!(t.last_disruption_end(), Some(Round::new(23)));
    }

    #[test]
    fn view_offsets_and_budget() {
        let t = Timeline::synchronous()
            .asynchronous(Round::new(10), 3)
            .asynchronous(Round::new(20), 2);
        let v = t.view_at(Round::new(11));
        assert_eq!(v.offset, 1);
        assert_eq!(v.remaining, 2);
        assert_eq!(v.global_offset, 1);
        assert!(v.is_async());
        // The second window re-arms the per-window offset but continues
        // the global one.
        let v = t.view_at(Round::new(20));
        assert_eq!(v.offset, 0);
        assert_eq!(v.remaining, 2);
        assert_eq!(v.global_offset, 3);
        // Synchronous gap in between.
        let v = t.view_at(Round::new(15));
        assert_eq!(v, EnvView::synchronous());
    }

    #[test]
    fn disruptions_are_sorted_and_labelled() {
        let t = Timeline::synchronous()
            .bounded_delay(Round::new(30), 2, 1)
            .asynchronous(Round::new(10), 3)
            .partition(Round::new(18), 4, vec![vec![ProcessId::new(0)]]);
        let d = t.disruptions();
        assert_eq!(d.len(), 3);
        assert_eq!(
            d.iter().map(|x| x.label).collect::<Vec<_>>(),
            vec!["async", "partition", "bounded-delay"]
        );
        assert_eq!(d[1].start, Round::new(18));
        assert_eq!(d[1].end, Round::new(21));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_windows_panic() {
        let _ = Timeline::synchronous()
            .asynchronous(Round::new(10), 4)
            .bounded_delay(Round::new(13), 2, 1);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_window_panics() {
        let _ = Timeline::synchronous().asynchronous(Round::new(10), 0);
    }

    #[test]
    #[should_panic(expected = "synchronous round")]
    fn window_at_round_zero_panics() {
        let _ = Timeline::synchronous().asynchronous(Round::ZERO, 2);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn duplicate_partition_membership_panics() {
        let _ = Timeline::synchronous().partition(
            Round::new(5),
            2,
            vec![vec![ProcessId::new(1)], vec![ProcessId::new(1)]],
        );
    }

    #[test]
    fn partition_reachability_and_residual_group() {
        let t = Timeline::synchronous().partition(
            Round::new(5),
            3,
            vec![vec![ProcessId::new(0), ProcessId::new(1)]],
        );
        let p = t.partition_at(Round::new(6)).expect("active");
        assert!(p.reachable(ProcessId::new(0), ProcessId::new(1)));
        assert!(!p.reachable(ProcessId::new(0), ProcessId::new(2)));
        // Unlisted processes form one residual group together.
        assert!(p.reachable(ProcessId::new(2), ProcessId::new(3)));
        let map = p.group_map(4);
        assert_eq!(map, vec![1, 1, 0, 0]);
        assert!(t.partition_at(Round::new(8)).is_none());
        assert!(t.view_at(Round::new(6)).partitioned);
        // A partition alone does not make the segment asynchronous.
        assert_eq!(t.kind_at(Round::new(6)), SegmentKind::Synchronous);
    }

    #[test]
    fn bounded_delay_is_deterministic_and_bounded() {
        for delta in [0u64, 1, 3, 7] {
            for idx in 0..200usize {
                for p in 0..8u32 {
                    let d = bounded_delay_of(42, idx, ProcessId::new(p), delta);
                    assert!(d <= delta);
                    assert_eq!(d, bounded_delay_of(42, idx, ProcessId::new(p), delta));
                }
            }
        }
        // Different coordinates actually vary the delay.
        let spread: st_types::FastSet<u64> = (0..64usize)
            .map(|i| bounded_delay_of(7, i, ProcessId::new(0), 7))
            .collect();
        assert!(spread.len() > 4, "delays are degenerate: {spread:?}");
    }
}
