//! The simulated network: a global message pool with per-process delivery
//! cursors.
//!
//! Implements the model of Section 2.1 exactly:
//!
//! * messages are never lost — at worst delayed past an asynchronous
//!   period (footnote 2: the dissemination layer retains them);
//! * in the receive phase of a **synchronous** round `r`, an awake process
//!   receives *every* message sent in rounds `≤ r` it has not received
//!   yet (including while it slept);
//! * in the receive phase of an **asynchronous** round, the adversary
//!   selects an arbitrary subset per receiver;
//! * Byzantine senders may target messages at subsets of processes
//!   (equivocation is sending different targeted messages).

use st_messages::SharedEnvelope;
use st_types::FastSet;
use st_types::{ProcessId, Round};

/// Who a message is addressed to. Honest multicasts are [`Recipients::All`];
/// Byzantine processes may target subsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recipients {
    /// Every process.
    All,
    /// Only the listed processes.
    Only(Vec<ProcessId>),
}

impl Recipients {
    /// Whether `p` is addressed.
    pub fn includes(&self, p: ProcessId) -> bool {
        match self {
            Recipients::All => true,
            Recipients::Only(list) => list.contains(&p),
        }
    }
}

/// A message in the global pool.
///
/// The envelope is a [`SharedEnvelope`]: the pool owns one allocation per
/// multicast and every delivery hands out a reference-count bump, never a
/// deep clone — the fast path the simulation's round loop relies on.
#[derive(Clone, Debug)]
pub struct SentMessage {
    /// Position in the pool (global, monotone — stable across
    /// [`Network::compact`]).
    pub index: usize,
    /// The round the message was sent in.
    pub round: Round,
    /// The actual (claimed) sender.
    pub sender: ProcessId,
    /// Addressing.
    pub recipients: Recipients,
    /// The signed message (shared, verify-once).
    pub envelope: SharedEnvelope,
}

/// Per-process delivery state: everything below `cursor` has been
/// delivered (or was not addressed to us); `extras` holds indices at or
/// beyond the cursor delivered early during asynchrony.
///
/// Invariant: every member of `extras` is `≥ cursor` — `deliver_sync`
/// consumes extras as the cursor passes them and `deliver_async` only
/// inserts indices at or beyond the cursor. [`Network::compact`] relies
/// on this to treat `min(cursor)` as the fully-delivered prefix.
#[derive(Clone, Debug, Default)]
struct DeliveryState {
    cursor: usize,
    extras: FastSet<usize>,
}

/// The simulated network.
///
/// Pool indices handed out (via [`SentMessage::index`] and the adversary's
/// `deliver` hook) are **global**: they keep identifying the same message
/// after [`Network::compact`] drops the fully-delivered prefix from
/// memory.
#[derive(Clone, Debug)]
pub struct Network {
    /// Retained messages: global indices `base ..= base + pool.len() - 1`.
    pool: Vec<SentMessage>,
    /// Global index of `pool[0]`; messages below it were compacted away.
    base: usize,
    /// Round of the most recent send — persisted separately from the pool
    /// so the round-monotonicity guard survives compaction emptying it.
    last_sent_round: Option<Round>,
    /// Global index of the first targeted ([`Recipients::Only`]) send, if
    /// any. Targeted sends make two equal delivery cursors stop certifying
    /// equal received streams (one receiver may have been addressed and
    /// the other not), so the shared-tally cohort pass consults
    /// [`Network::targeted_below_cursor`] before grouping.
    first_targeted: Option<usize>,
    delivery: Vec<DeliveryState>,
}

impl Network {
    /// A network for `n` processes.
    pub fn new(n: usize) -> Network {
        Network {
            pool: Vec::new(),
            base: 0,
            last_sent_round: None,
            first_targeted: None,
            delivery: (0..n).map(|_| DeliveryState::default()).collect(),
        }
    }

    /// Total messages ever sent (including compacted ones).
    pub fn messages_sent(&self) -> usize {
        self.base + self.pool.len()
    }

    /// Appends a message to the pool (send phase). Messages must be
    /// appended in non-decreasing round order — the delivery cursor relies
    /// on the pool being round-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `round` is lower than the last appended round.
    pub fn send(
        &mut self,
        round: Round,
        sender: ProcessId,
        recipients: Recipients,
        envelope: impl Into<SharedEnvelope>,
    ) {
        if let Some(last) = self.last_sent_round {
            assert!(round >= last, "messages must be appended in round order");
        }
        self.last_sent_round = Some(round);
        let index = self.messages_sent();
        if matches!(recipients, Recipients::Only(_)) && self.first_targeted.is_none() {
            self.first_targeted = Some(index);
        }
        self.pool.push(SentMessage {
            index,
            round,
            sender,
            recipients,
            envelope: envelope.into(),
        });
    }

    /// Synchronous receive for `p` at the end of round `r`: returns every
    /// not-yet-delivered message addressed to `p` sent in rounds `≤ r`,
    /// in pool order, and marks them delivered. Each returned envelope is
    /// a shared handle into the pool — no payload is copied.
    pub fn deliver_sync(&mut self, p: ProcessId, r: Round) -> Vec<SharedEnvelope> {
        let mut out = Vec::new();
        self.deliver_sync_with(p, r, |env| out.push(env.clone()));
        out
    }

    /// Zero-copy variant of [`Network::deliver_sync`]: invokes `deliver`
    /// on a borrowed handle for every delivered message instead of
    /// collecting refcount bumps into a vector. This is the round loop's
    /// hot path — per delivered message it costs one round comparison,
    /// one recipients check and the callback; no allocation, no atomics.
    /// Returns the number of messages delivered.
    pub fn deliver_sync_with<F>(&mut self, p: ProcessId, r: Round, mut deliver: F) -> usize
    where
        F: FnMut(&SharedEnvelope),
    {
        let state = &mut self.delivery[p.index()];
        let start = state.cursor.max(self.base) - self.base;
        // `extras` is empty except for processes that received early
        // deliveries during an asynchronous window — skip the per-message
        // set probe on the (overwhelmingly common) synchronous path.
        let mut extras_left = state.extras.len();
        let mut taken = 0usize;
        let mut delivered = 0usize;
        for msg in &self.pool[start..] {
            if msg.round > r {
                break;
            }
            taken += 1;
            if extras_left > 0 && state.extras.remove(&msg.index) {
                extras_left -= 1;
            } else if msg.recipients.includes(p) {
                delivered += 1;
                deliver(&msg.envelope);
            }
        }
        state.cursor = self.base + start + taken;
        // Extras below the new cursor are consumed above; any remaining
        // extras reference indices ≥ cursor (sent later than r): keep.
        delivered
    }

    /// The messages *available* for adversarial delivery to `p` at the end
    /// of an asynchronous round `r`: addressed to `p`, sent in rounds
    /// `≤ r`, not yet delivered.
    pub fn available_for(&self, p: ProcessId, r: Round) -> Vec<&SentMessage> {
        let state = &self.delivery[p.index()];
        self.pool[state.cursor.max(self.base) - self.base..]
            .iter()
            .take_while(|m| m.round <= r)
            .filter(|m| m.recipients.includes(p) && !state.extras.contains(&m.index))
            .collect()
    }

    /// Adversarial (asynchronous) delivery: marks the chosen pool indices
    /// delivered to `p` and returns their envelopes in pool order. Indices
    /// not actually available to `p` are ignored — the adversary cannot
    /// deliver a message twice, to a non-addressee, or from the future.
    /// Duplicate choices (within one call, across calls, or overlapping a
    /// past synchronous delivery) are collapsed deterministically: each
    /// chosen message is delivered at most once, in global pool order.
    pub fn deliver_async(
        &mut self,
        p: ProcessId,
        r: Round,
        chosen: &[usize],
    ) -> Vec<SharedEnvelope> {
        let mut sorted: Vec<usize> = chosen.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let state = &mut self.delivery[p.index()];
        let mut out = Vec::new();
        for idx in sorted {
            if idx < state.cursor.max(self.base) || idx >= self.base + self.pool.len() {
                continue;
            }
            let msg = &self.pool[idx - self.base];
            if msg.round > r || !msg.recipients.includes(p) || state.extras.contains(&idx) {
                continue;
            }
            state.extras.insert(idx);
            out.push(msg.envelope.clone());
        }
        out
    }

    /// Bounded-delay receive for `p` at the end of round `r` (the
    /// [`crate::SegmentKind::BoundedDelay`] delivery path): every
    /// not-yet-delivered message addressed to `p` whose **deadline** has
    /// been reached (`sent round + delta ≤ r`) is delivered
    /// unconditionally, and the per-process cursor advances past the
    /// deadline boundary — which is what keeps [`Network::compact`]
    /// working through long bounded-delay segments. On top of that,
    /// `chosen` (global indices, typically the messages whose sampled
    /// delay elapsed this round) are delivered **early** via the same
    /// marking mechanism as [`Network::deliver_async`]: duplicates are
    /// collapsed, and indices that are out of range, already delivered,
    /// from the future, or not addressed to `p` are ignored, so no
    /// message can be delivered twice and the `Δ` bound cannot be
    /// stretched by a misbehaving delay oracle. Returns the delivered
    /// envelopes in global pool order.
    pub fn deliver_bounded(
        &mut self,
        p: ProcessId,
        r: Round,
        delta: u64,
        chosen: &[usize],
    ) -> Vec<SharedEnvelope> {
        let state = &mut self.delivery[p.index()];
        let start = state.cursor.max(self.base) - self.base;
        let mut out = Vec::new();
        // Phase 1 — forced deadline prefix: messages sent in rounds
        // `≤ r − delta` must arrive now; the cursor advances like the
        // synchronous path so the fully-delivered prefix keeps growing.
        if let Some(cutoff) = r.as_u64().checked_sub(delta) {
            let mut taken = 0usize;
            for msg in &self.pool[start..] {
                if msg.round.as_u64() > cutoff {
                    break;
                }
                taken += 1;
                if state.extras.remove(&msg.index) {
                    // Delivered early in an earlier bounded/async round.
                } else if msg.recipients.includes(p) {
                    out.push(msg.envelope.clone());
                }
            }
            state.cursor = self.base + start + taken;
        }
        // Phase 2 — early deliveries inside the `(r − delta, r]` band,
        // delegated to the adversarial marking path so its hardening
        // rules live in one place. Every phase-2 index is ≥ the advanced
        // cursor, so the combined output stays in global pool order.
        out.extend(self.deliver_async(p, r, chosen));
        out
    }

    /// Drops from memory the prefix of the pool that **every** process has
    /// passed: messages below `min(cursor)` can never again be returned by
    /// [`Network::deliver_sync`], [`Network::available_for`] or
    /// [`Network::deliver_async`] (extras are always at or beyond their
    /// own cursor, so none can reference the dropped prefix). Returns the
    /// number of messages dropped.
    ///
    /// Global indices remain valid: `messages_sent()` and
    /// [`SentMessage::index`] are unaffected; only [`Network::pool`]
    /// shrinks (from the front).
    pub fn compact(&mut self) -> usize {
        let Some(safe) = self
            .delivery
            .iter()
            .map(|s| {
                s.extras
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(usize::MAX)
                    .min(s.cursor)
            })
            .min()
        else {
            return 0;
        };
        if safe <= self.base {
            return 0;
        }
        let k = (safe - self.base).min(self.pool.len());
        self.pool.drain(..k);
        self.base += k;
        k
    }

    /// Global index of the first message still retained in memory
    /// (everything below it was [`Network::compact`]ed away).
    pub fn pool_base(&self) -> usize {
        self.base
    }

    /// Read-only view of the retained pool (adversary knowledge,
    /// diagnostics): messages with global indices `pool_base()..`.
    pub fn pool(&self) -> &[SentMessage] {
        &self.pool
    }

    /// `p`'s delivery cursor (global index): every message below it was
    /// either delivered to `p` or not addressed to it. Two processes with
    /// equal cursors, no pending [`Network::has_extras`] and no
    /// [`Network::targeted_below_cursor`] send have received exactly the
    /// same envelope stream in the same order — the network half of the
    /// shared-tally cohort certificate.
    pub fn delivery_cursor(&self, p: ProcessId) -> usize {
        self.delivery[p.index()].cursor
    }

    /// Whether `p` holds early (asynchronous/bounded-delay) deliveries at
    /// or beyond its cursor. While any are pending, `p`'s received stream
    /// is not a pure cursor prefix and it must not join a tally cohort.
    pub fn has_extras(&self, p: ProcessId) -> bool {
        !self.delivery[p.index()].extras.is_empty()
    }

    /// Whether any targeted ([`Recipients::Only`]) send lies below `p`'s
    /// delivery cursor. Once one does, `p`'s cursor no longer certifies
    /// which messages it actually received (addressing filtered the
    /// prefix), so `p` is permanently excluded from tally cohorts —
    /// targeted sends only occur under Byzantine adversaries, where
    /// sharing is already marginal.
    pub fn targeted_below_cursor(&self, p: ProcessId) -> bool {
        self.first_targeted
            .is_some_and(|t| t < self.delivery[p.index()].cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_crypto::Keypair;
    use st_messages::{Envelope, Payload, Vote};
    use st_types::BlockId;

    fn env(sender: u32, round: u64, tip: u64) -> Envelope {
        let kp = Keypair::derive(ProcessId::new(sender), 42);
        Envelope::sign(
            &kp,
            Payload::Vote(Vote::new(
                ProcessId::new(sender),
                Round::new(round),
                BlockId::new(tip),
            )),
        )
    }

    #[test]
    fn sync_delivery_gets_everything_once() {
        let mut net = Network::new(2);
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::All,
            env(0, 1, 5),
        );
        net.send(
            Round::new(1),
            ProcessId::new(1),
            Recipients::All,
            env(1, 1, 6),
        );
        let p0 = ProcessId::new(0);
        let got = net.deliver_sync(p0, Round::new(1));
        assert_eq!(got.len(), 2);
        // Second call: nothing new.
        assert!(net.deliver_sync(p0, Round::new(1)).is_empty());
    }

    #[test]
    fn sync_delivery_respects_round_bound() {
        let mut net = Network::new(1);
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::All,
            env(0, 1, 5),
        );
        net.send(
            Round::new(3),
            ProcessId::new(0),
            Recipients::All,
            env(0, 3, 6),
        );
        let p = ProcessId::new(0);
        assert_eq!(net.deliver_sync(p, Round::new(2)).len(), 1);
        assert_eq!(net.deliver_sync(p, Round::new(3)).len(), 1);
    }

    #[test]
    fn queued_messages_arrive_on_wake() {
        // A process that "slept" (did not call deliver) through rounds 1-3
        // receives everything on its first receive.
        let mut net = Network::new(2);
        for r in 1..=3u64 {
            net.send(
                Round::new(r),
                ProcessId::new(0),
                Recipients::All,
                env(0, r, r),
            );
        }
        assert_eq!(net.deliver_sync(ProcessId::new(1), Round::new(3)).len(), 3);
    }

    #[test]
    fn targeted_messages_skip_non_addressees() {
        let mut net = Network::new(3);
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::Only(vec![ProcessId::new(1)]),
            env(0, 1, 5),
        );
        assert_eq!(net.deliver_sync(ProcessId::new(1), Round::new(1)).len(), 1);
        assert!(net
            .deliver_sync(ProcessId::new(2), Round::new(1))
            .is_empty());
    }

    #[test]
    fn async_delivery_is_subset_then_sync_catches_up() {
        let mut net = Network::new(2);
        for r in 1..=1u64 {
            for s in 0..2u32 {
                net.send(
                    Round::new(r),
                    ProcessId::new(s),
                    Recipients::All,
                    env(s, r, s as u64),
                );
            }
        }
        let p = ProcessId::new(0);
        let avail = net.available_for(p, Round::new(1));
        assert_eq!(avail.len(), 2);
        let first_idx = avail[0].index;
        // Adversary delivers only the first message.
        let got = net.deliver_async(p, Round::new(1), &[first_idx]);
        assert_eq!(got.len(), 1);
        // Available shrinks.
        assert_eq!(net.available_for(p, Round::new(1)).len(), 1);
        // Synchrony restored: the withheld message arrives, no duplicate.
        let later = net.deliver_sync(p, Round::new(2));
        assert_eq!(later.len(), 1);
        assert!(net.deliver_sync(p, Round::new(2)).is_empty());
    }

    #[test]
    fn async_delivery_ignores_bogus_choices() {
        let mut net = Network::new(2);
        net.send(
            Round::new(2),
            ProcessId::new(0),
            Recipients::Only(vec![ProcessId::new(0)]),
            env(0, 2, 1),
        );
        let p1 = ProcessId::new(1);
        // Not addressed to p1, out-of-range index, future round.
        assert!(net.deliver_async(p1, Round::new(2), &[0]).is_empty());
        assert!(net.deliver_async(p1, Round::new(2), &[99]).is_empty());
        let p0 = ProcessId::new(0);
        assert!(net.deliver_async(p0, Round::new(1), &[0]).is_empty()); // round 2 > 1
        assert_eq!(net.deliver_async(p0, Round::new(2), &[0, 0]).len(), 1); // dedup
    }

    #[test]
    fn async_delivery_dedups_duplicate_choices() {
        // The adversary hands back the same index many times, unsorted and
        // across calls: the message is delivered exactly once.
        let mut net = Network::new(2);
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::All,
            env(0, 1, 5),
        );
        net.send(
            Round::new(1),
            ProcessId::new(1),
            Recipients::All,
            env(1, 1, 6),
        );
        let p = ProcessId::new(0);
        // Duplicates within one call, unsorted.
        let got = net.deliver_async(p, Round::new(1), &[1, 0, 1, 0, 0, 1]);
        assert_eq!(got.len(), 2);
        // The same choices across a later call: nothing is re-delivered.
        assert!(net.deliver_async(p, Round::new(1), &[0, 1]).is_empty());
        // Nor does the synchronous catch-up replay them.
        assert!(net.deliver_sync(p, Round::new(2)).is_empty());
    }

    #[test]
    fn bounded_delivery_enforces_deadline_and_early_choices() {
        let mut net = Network::new(2);
        for r in 1..=3u64 {
            net.send(
                Round::new(r),
                ProcessId::new(0),
                Recipients::All,
                env(0, r, r),
            );
        }
        let p = ProcessId::new(1);
        // delta = 2 at round 2: only the round-0-deadline message (sent in
        // round ≤ 0) would be forced — none; choose index 1 (round 2) early.
        let got = net.deliver_bounded(p, Round::new(2), 2, &[1]);
        assert_eq!(got.len(), 1);
        // Round 3, delta = 2: the round-1 message's deadline (1+2) arrives
        // — forced even though never chosen. Index 1 is not re-delivered
        // despite being chosen again (dedup across calls), index 2 comes
        // early by choice.
        let got = net.deliver_bounded(p, Round::new(3), 2, &[1, 2, 2]);
        assert_eq!(got.len(), 2);
        // Everything has been delivered exactly once overall.
        assert!(net.deliver_sync(p, Round::new(9)).is_empty());
    }

    #[test]
    fn bounded_delivery_ignores_bogus_choices_and_respects_compaction() {
        let mut net = Network::new(2);
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::Only(vec![ProcessId::new(0)]),
            env(0, 1, 1),
        );
        net.send(
            Round::new(5),
            ProcessId::new(0),
            Recipients::All,
            env(0, 5, 2),
        );
        let p1 = ProcessId::new(1);
        // Not addressed (0), out of range (99), from the future at r=4 (1).
        assert!(net
            .deliver_bounded(p1, Round::new(4), 9, &[0, 99])
            .is_empty());
        assert_eq!(net.deliver_bounded(p1, Round::new(5), 9, &[1]).len(), 1);
        // A later zero-delta pass forces both cursors over the prefix
        // (p1's early delivery is consumed, not repeated), after which
        // compaction drops it while global indices keep working.
        let p0 = ProcessId::new(0);
        assert_eq!(net.deliver_bounded(p0, Round::new(5), 0, &[]).len(), 2);
        assert!(net.deliver_bounded(p1, Round::new(5), 0, &[]).is_empty());
        assert_eq!(net.compact(), 2);
        net.send(
            Round::new(6),
            ProcessId::new(0),
            Recipients::All,
            env(0, 6, 3),
        );
        // Global index 2 is the fresh message; the compacted prefix stays
        // undeliverable.
        assert_eq!(
            net.deliver_bounded(p1, Round::new(6), 9, &[0, 1, 2]).len(),
            1
        );
        assert_eq!(net.pool_base(), 2);
    }

    #[test]
    fn bounded_deadline_advances_cursor_for_compaction() {
        // A pure bounded-delay run (nobody ever calls deliver_sync): the
        // forced-deadline phase advances every cursor, so the pool still
        // compacts once all deadlines pass.
        let mut net = Network::new(2);
        for r in 1..=4u64 {
            net.send(
                Round::new(r),
                ProcessId::new(0),
                Recipients::All,
                env(0, r, r),
            );
        }
        for r in 1..=6u64 {
            for pid in 0..2u32 {
                let _ = net.deliver_bounded(ProcessId::new(pid), Round::new(r), 2, &[]);
            }
        }
        // Deadlines for rounds 1..=4 all passed by round 6.
        assert_eq!(net.compact(), 4);
        assert!(net.pool().is_empty());
    }

    #[test]
    #[should_panic(expected = "round order")]
    fn out_of_order_send_panics_even_after_compaction_empties_pool() {
        let mut net = Network::new(1);
        net.send(
            Round::new(5),
            ProcessId::new(0),
            Recipients::All,
            env(0, 5, 1),
        );
        let _ = net.deliver_sync(ProcessId::new(0), Round::new(5));
        assert_eq!(net.compact(), 1);
        assert!(net.pool().is_empty());
        // The monotonicity guard must survive the pool being drained.
        net.send(
            Round::new(3),
            ProcessId::new(0),
            Recipients::All,
            env(0, 3, 1),
        );
    }

    #[test]
    fn cohort_accessors_track_cursor_extras_and_targeting() {
        let mut net = Network::new(2);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        net.send(Round::new(1), p0, Recipients::All, env(0, 1, 1));
        assert_eq!(net.delivery_cursor(p0), 0);
        assert!(!net.has_extras(p0));
        assert!(!net.targeted_below_cursor(p0));
        // Early (async) delivery leaves an extra pending.
        assert_eq!(net.deliver_async(p1, Round::new(1), &[0]).len(), 1);
        assert!(net.has_extras(p1));
        // The synchronous catch-up consumes it and advances the cursor.
        assert!(net.deliver_sync(p1, Round::new(1)).is_empty());
        assert!(!net.has_extras(p1));
        assert_eq!(net.delivery_cursor(p1), 1);
        // A targeted send taints cursors only once they pass it.
        net.send(Round::new(2), p0, Recipients::Only(vec![p1]), env(0, 2, 2));
        assert!(!net.targeted_below_cursor(p0));
        let _ = net.deliver_sync(p0, Round::new(2));
        let _ = net.deliver_sync(p1, Round::new(2));
        assert!(net.targeted_below_cursor(p0));
        assert!(net.targeted_below_cursor(p1));
    }

    #[test]
    #[should_panic(expected = "round order")]
    fn out_of_order_send_panics() {
        let mut net = Network::new(1);
        net.send(
            Round::new(2),
            ProcessId::new(0),
            Recipients::All,
            env(0, 2, 1),
        );
        net.send(
            Round::new(1),
            ProcessId::new(0),
            Recipients::All,
            env(0, 1, 1),
        );
    }
}
