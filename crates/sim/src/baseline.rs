//! The **closed-form** fixed-quorum baseline: a schedule walk, no
//! messages.
//!
//! The introduction motivates dynamic availability with the observation
//! that "traditional BFT protocols (synchronous or partially synchronous)
//! get stuck when participation drops below their fixed (usually 1/2 or
//! 2/3) quorum threshold". The *simulated* form of that comparator is
//! [`st_core::QuorumProcess`] — a real message-passing [`Protocol`]
//! implementor driven by the same runner, schedules and timelines as the
//! sleepy protocol (experiments B1/B2). This module keeps the original
//! analytical walk: per view, count the honest awake processes at the
//! decision round and compare against `> 2n/3` of **all** `n`.
//!
//! On honest synchronous schedules the two must agree exactly — the walk
//! is the *cross-check* for the simulation (see
//! `crates/sim/tests/quorum_protocol.rs` and the assertion inside
//! `exp_dynamic_availability`): every analytically decided view must be
//! decided by some simulated process (the simulation integrates a view's
//! votes one round later, at round `2v + 1`), and no analytically
//! stalled view may ever decide.
//!
//! [`Protocol`]: st_core::Protocol

use crate::schedule::Schedule;
use st_types::View;

/// Outcome of running the static-quorum baseline over a schedule.
#[derive(Clone, Debug, Default)]
pub struct BaselineReport {
    /// Views in which the quorum was met and a decision happened.
    pub decided_views: Vec<View>,
    /// Views that stalled (quorum missed).
    pub stalled_views: Vec<View>,
}

impl BaselineReport {
    /// Number of decisions.
    pub fn decisions(&self) -> usize {
        self.decided_views.len()
    }

    /// Longest run of consecutive stalled views.
    pub fn longest_stall(&self) -> usize {
        let mut longest = 0usize;
        let mut run = 0usize;
        let mut prev: Option<u64> = None;
        for v in &self.stalled_views {
            run = match prev {
                Some(p) if v.as_u64() == p + 1 => run + 1,
                _ => 1,
            };
            prev = Some(v.as_u64());
            longest = longest.max(run);
        }
        longest
    }
}

/// The static-quorum BFT baseline.
///
/// One view per two rounds, mirroring the sleepy protocol's cadence so
/// decision counts are directly comparable. A view decides iff the number
/// of awake honest processes in its *decision round* exceeds `2n/3` —
/// votes from asleep processes cannot arrive, and the quorum is counted
/// against the fixed membership `n`.
#[derive(Clone, Debug)]
pub struct StaticQuorumBft {
    n: usize,
}

impl StaticQuorumBft {
    /// A baseline instance over `n` fixed members.
    pub fn new(n: usize) -> StaticQuorumBft {
        StaticQuorumBft { n }
    }

    /// The quorum size: decisions need strictly more than `2n/3` votes.
    /// Delegates to the message-passing implementation's rule so the
    /// walk and the simulation can never drift apart on the threshold.
    pub fn quorum_exceeded(&self, votes: usize) -> bool {
        st_core::QuorumProcess::quorum_exceeded(self.n, votes)
    }

    /// Runs the baseline over `schedule` for views whose decision rounds
    /// fall within the horizon.
    pub fn run(&self, schedule: &Schedule) -> BaselineReport {
        let mut report = BaselineReport::default();
        let mut v = 1u64;
        loop {
            let view = View::new(v);
            let Some(decision_round) = view.second_round() else {
                v += 1;
                continue;
            };
            if decision_round.as_u64() > schedule.horizon() {
                break;
            }
            let votes = schedule.honest_awake(decision_round).len();
            if self.quorum_exceeded(votes) {
                report.decided_views.push(view);
            } else {
                report.stalled_views.push(view);
            }
            v += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use st_types::Round;

    #[test]
    fn full_participation_decides_every_view() {
        let schedule = Schedule::full(9, 20);
        let report = StaticQuorumBft::new(9).run(&schedule);
        assert_eq!(report.stalled_views.len(), 0);
        assert_eq!(report.decisions(), 10); // views 1..=10 decide at rounds 2..=20
    }

    #[test]
    fn majority_sleep_stalls_baseline() {
        // 60% asleep during rounds 6..=14: every decision round in that
        // span misses the 2n/3 quorum.
        let schedule = Schedule::mass_sleep(10, 20, 0.6, 6, 14);
        let report = StaticQuorumBft::new(10).run(&schedule);
        assert!(
            report.longest_stall() >= 4,
            "stall {} views",
            report.longest_stall()
        );
        // It recovers after the incident.
        assert!(report
            .decided_views
            .iter()
            .any(|v| v.second_round().unwrap() > Round::new(14)));
    }

    #[test]
    fn exact_two_thirds_is_not_enough() {
        let bft = StaticQuorumBft::new(9);
        assert!(!bft.quorum_exceeded(6)); // 6 = 2·9/3 exactly
        assert!(bft.quorum_exceeded(7));
    }
}
