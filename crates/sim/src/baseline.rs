//! A classic fixed-quorum BFT baseline.
//!
//! The introduction motivates dynamic availability with the observation
//! that "traditional BFT protocols (synchronous or partially synchronous)
//! get stuck when participation drops below their fixed (usually 1/2 or
//! 2/3) quorum threshold". This module provides that comparator for
//! experiment B1: a deliberately simple two-round-per-view protocol whose
//! decision rule requires votes from more than `2n/3` of **all** `n`
//! processes — the static quorum — rather than of the perceived
//! participation.
//!
//! Under full participation it decides every view; when more than a third
//! of the processes sleep, it stalls until they return, while the sleepy
//! protocol keeps deciding. The baseline is honest-only (the comparison is
//! about availability, not attack resistance).

use crate::schedule::Schedule;
use st_types::View;

/// Outcome of running the static-quorum baseline over a schedule.
#[derive(Clone, Debug, Default)]
pub struct BaselineReport {
    /// Views in which the quorum was met and a decision happened.
    pub decided_views: Vec<View>,
    /// Views that stalled (quorum missed).
    pub stalled_views: Vec<View>,
}

impl BaselineReport {
    /// Number of decisions.
    pub fn decisions(&self) -> usize {
        self.decided_views.len()
    }

    /// Longest run of consecutive stalled views.
    pub fn longest_stall(&self) -> usize {
        let mut longest = 0usize;
        let mut run = 0usize;
        let mut prev: Option<u64> = None;
        for v in &self.stalled_views {
            run = match prev {
                Some(p) if v.as_u64() == p + 1 => run + 1,
                _ => 1,
            };
            prev = Some(v.as_u64());
            longest = longest.max(run);
        }
        longest
    }
}

/// The static-quorum BFT baseline.
///
/// One view per two rounds, mirroring the sleepy protocol's cadence so
/// decision counts are directly comparable. A view decides iff the number
/// of awake honest processes in its *decision round* exceeds `2n/3` —
/// votes from asleep processes cannot arrive, and the quorum is counted
/// against the fixed membership `n`.
#[derive(Clone, Debug)]
pub struct StaticQuorumBft {
    n: usize,
}

impl StaticQuorumBft {
    /// A baseline instance over `n` fixed members.
    pub fn new(n: usize) -> StaticQuorumBft {
        StaticQuorumBft { n }
    }

    /// The quorum size: decisions need strictly more than `2n/3` votes.
    pub fn quorum_exceeded(&self, votes: usize) -> bool {
        (votes as f64) > 2.0 * (self.n as f64) / 3.0
    }

    /// Runs the baseline over `schedule` for views whose decision rounds
    /// fall within the horizon.
    pub fn run(&self, schedule: &Schedule) -> BaselineReport {
        let mut report = BaselineReport::default();
        let mut v = 1u64;
        loop {
            let view = View::new(v);
            let Some(decision_round) = view.second_round() else {
                v += 1;
                continue;
            };
            if decision_round.as_u64() > schedule.horizon() {
                break;
            }
            let votes = schedule.honest_awake(decision_round).len();
            if self.quorum_exceeded(votes) {
                report.decided_views.push(view);
            } else {
                report.stalled_views.push(view);
            }
            v += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use st_types::Round;

    #[test]
    fn full_participation_decides_every_view() {
        let schedule = Schedule::full(9, 20);
        let report = StaticQuorumBft::new(9).run(&schedule);
        assert_eq!(report.stalled_views.len(), 0);
        assert_eq!(report.decisions(), 10); // views 1..=10 decide at rounds 2..=20
    }

    #[test]
    fn majority_sleep_stalls_baseline() {
        // 60% asleep during rounds 6..=14: every decision round in that
        // span misses the 2n/3 quorum.
        let schedule = Schedule::mass_sleep(10, 20, 0.6, 6, 14);
        let report = StaticQuorumBft::new(10).run(&schedule);
        assert!(
            report.longest_stall() >= 4,
            "stall {} views",
            report.longest_stall()
        );
        // It recovers after the incident.
        assert!(report
            .decided_views
            .iter()
            .any(|v| v.second_round().unwrap() > Round::new(14)));
    }

    #[test]
    fn exact_two_thirds_is_not_enough() {
        let bft = StaticQuorumBft::new(9);
        assert!(!bft.quorum_exceeded(6)); // 6 = 2·9/3 exactly
        assert!(bft.quorum_exceeded(7));
    }
}
