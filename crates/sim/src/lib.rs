//! The sleepy-model execution substrate.
//!
//! The paper's theorems are stated in a lock-step round model
//! (Section 2.1): each round has a send phase (processes in `O_r`
//! multicast) and a receive phase (processes awake at the end of the round
//! receive). Under synchrony every message sent in rounds `≤ r` reaches
//! every process awake in the receive phase of round `r`; during an
//! asynchronous period the adversary delivers an arbitrary subset. Asleep
//! processes have their messages queued and delivered on wake-up; messages
//! are never lost.
//!
//! This crate *is* that model, executable:
//!
//! * [`Schedule`] — who is awake (`H_r`) and who is corrupted (`B_r`,
//!   growing adversary) in every round, with generators for full
//!   participation, bounded random churn, mass-sleep incidents and
//!   oscillating participation;
//! * [`Timeline`] — the round-indexed environment model: synchronous by
//!   default, with any number of asynchronous and bounded-delay windows
//!   plus partition overlays, so repeated async spells, partial synchrony
//!   (GST) and split-brain scenarios are data, not special cases;
//! * [`Network`] — the global message pool with per-process delivery
//!   cursors implementing exactly the synchronous/asynchronous/
//!   bounded-delay delivery rules above;
//! * [`Adversary`] — full-knowledge Byzantine strategy hook: fabricates
//!   signed messages from corrupted processes (equivocation, targeted
//!   sends) and controls delivery during asynchronous rounds. Includes the
//!   paper's split-vote safety attack (Section 1) among several strategies;
//! * [`SimBuilder`] — the fluent driving API: schedule, timeline, typed
//!   adversary and user observers in one chain, with a proper error path;
//! * [`Simulation`] — the round loop, generic over the
//!   [`st_core::Protocol`] it drives (defaulted to
//!   [`st_core::TobProcess`]; `SimBuilder::<QuorumProcess>::for_protocol`
//!   runs the fixed-quorum baseline under the same harness) — steppable
//!   ([`Simulation::step`] / [`Simulation::run_until`] /
//!   [`Simulation::finish`]) with mid-run inspection and intervention;
//! * [`Observer`] + [`SimEvent`] — the execution narrated as an event
//!   stream; the built-in monitors ride the same trait user probes do,
//!   and the report is assembled from the observer pipeline;
//! * [`Sweep`] — cartesian config grids with deterministic per-cell
//!   seeds, run across worker threads in input order;
//!   [`Sweep::compare`] runs the same cells and seeds through two
//!   protocols for head-to-head grids;
//! * [`Workload`] / [`WorkloadSpec`] — the open-loop workload layer
//!   (st-load) threaded into the round loop: per-round arrivals enter a
//!   bounded mempool, drained batches reach `submit_tx`, and
//!   [`SimReport::workload`] carries throughput, drop accounting and
//!   exact submit→decide latency percentiles
//!   ([`diurnal_schedule`] derives participation from the same trace);
//! * [`SimReport`] — decisions, safety/resilience violations (Definitions
//!   2 and 5), transaction-liveness statistics, per-window recovery
//!   records;
//! * [`baseline::StaticQuorumBft`] — the closed-form schedule walk that
//!   cross-checks the message-passing [`st_core::QuorumProcess`]
//!   baseline used to demonstrate what *dynamic availability* buys
//!   (experiments B1/B2).
//!
//! # Example: a synchronous run with churn
//!
//! ```
//! use st_sim::{Schedule, SimBuilder, adversary::SilentAdversary};
//! use st_types::Params;
//!
//! let params = Params::builder(10).expiration(2).churn_rate(0.05).build()?;
//! let report = SimBuilder::new(params, 123)
//!     .horizon(40)
//!     .txs_every(4)
//!     .schedule(Schedule::random_churn(10, 40, 0.02, 99, &Default::default()))
//!     .adversary(SilentAdversary)
//!     .build()?
//!     .run();
//! assert!(report.safety_violations.is_empty());
//! assert!(report.decisions_total > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod baseline;
mod builder;
pub mod env;
pub mod explore;
mod metrics;
mod monitor;
mod network;
mod observer;
mod runner;
pub mod scenario;
mod schedule;
mod sweep;
pub mod workload;

pub use adversary::{Adversary, AdversaryCtx, TargetedMessage};
pub use builder::{BuildError, SimBuilder};
pub use env::{bounded_delay_of, Disruption, EnvView, EnvWindow, Partition, SegmentKind, Timeline};
pub use metrics::{RoundCost, RoundSample, RoundTrace};
pub use monitor::{RecoveryRecord, SafetyViolation, SimReport, TxRecord};
pub use network::{Network, Recipients, SentMessage};
pub use observer::{DecisionLog, DecisionTap, ObsCtx, Observer, SimEvent, ViolationKind};
pub use runner::{AsyncWindow, SimConfig, Simulation};
pub use schedule::{ChurnOptions, Schedule};
pub use sweep::{Sweep, SweepComparison, SweepReports};
pub use workload::{
    diurnal_schedule, LatencyObserver, WorkloadObserver, WorkloadSpec, WorkloadSummary,
};

// The workload layer's own vocabulary (generators, mempool, histogram),
// re-exported so simulation drivers need only this crate in scope.
pub use st_load::{
    ConstantRate, Diurnal, FlashCrowd, Histogram, LatencyStats, Mempool, MempoolStats, PendingTx,
    Workload,
};

// The protocol abstraction the whole stack is generic over, re-exported
// so simulation drivers need only this crate in scope.
pub use st_core::{Protocol, QuorumProcess};
