//! Bounded exhaustive exploration of adversarial delivery strategies.
//!
//! Theorem 2 quantifies over *every* adversary. Sampling attacks (the
//! strategies in [`crate::adversary`]) shows specific ones fail; this
//! module goes further for small instances: it enumerates **all**
//! delivery strategies from a structured menu — per asynchronous round,
//! per receiver, one [`DeliveryPattern`] — and runs the full protocol
//! under each. For the extended protocol with `π < η` the checker must
//! find *zero* violating strategies; for vanilla MMR it finds concrete
//! witnesses (the parity partition is in the menu).
//!
//! The menu is expressive enough to contain the known attacks (blackout,
//! partition, eclipse-one-side) while keeping the strategy space
//! enumerable: `|menu|^(n·π)` executions.

use crate::adversary::{Adversary, AdversaryCtx, TargetedMessage};
use crate::builder::SimBuilder;
use crate::env::{SegmentKind, Timeline};
use crate::network::SentMessage;
use crate::runner::{AsyncWindow, SimConfig};
use crate::schedule::Schedule;
use crate::sweep::Sweep;
use st_types::{Params, ProcessId};

/// What a receiver gets in one asynchronous round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPattern {
    /// Everything available (the round behaves synchronously for this
    /// receiver).
    All,
    /// Nothing (blackout).
    Nothing,
    /// Only messages from even-id senders.
    EvenSenders,
    /// Only messages from odd-id senders.
    OddSenders,
}

impl DeliveryPattern {
    /// The full menu, in enumeration order.
    pub const MENU: [DeliveryPattern; 4] = [
        DeliveryPattern::All,
        DeliveryPattern::Nothing,
        DeliveryPattern::EvenSenders,
        DeliveryPattern::OddSenders,
    ];

    fn admits(self, sender: ProcessId) -> bool {
        match self {
            DeliveryPattern::All => true,
            DeliveryPattern::Nothing => false,
            DeliveryPattern::EvenSenders => sender.index().is_multiple_of(2),
            DeliveryPattern::OddSenders => sender.index() % 2 == 1,
        }
    }
}

/// A complete adversarial strategy: `patterns[offset][receiver]` is the
/// delivery pattern for the `offset`-th asynchronous round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Strategy {
    patterns: Vec<Vec<DeliveryPattern>>,
}

impl Strategy {
    /// Decodes strategy number `index` (base-`|menu|` digits over the
    /// `n·pi` pattern slots).
    pub fn decode(index: u64, n: usize, pi: u64) -> Strategy {
        let m = DeliveryPattern::MENU.len() as u64;
        let mut digits = index;
        let patterns = (0..pi)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let d = (digits % m) as usize;
                        digits /= m;
                        DeliveryPattern::MENU[d]
                    })
                    .collect()
            })
            .collect();
        Strategy { patterns }
    }

    /// The number of distinct strategies for `n` receivers over `pi`
    /// asynchronous rounds.
    pub fn space_size(n: usize, pi: u64) -> u64 {
        (DeliveryPattern::MENU.len() as u64).pow((n as u64 * pi) as u32)
    }

    /// The pattern assigned to `receiver` in the `offset`-th asynchronous
    /// round (defaults to `All` outside the scripted window).
    pub fn pattern(&self, offset: usize, receiver: ProcessId) -> DeliveryPattern {
        self.patterns
            .get(offset)
            .and_then(|row| row.get(receiver.index()))
            .copied()
            .unwrap_or(DeliveryPattern::All)
    }
}

/// An adversary that executes a fixed [`Strategy`] (pure delivery
/// control; no Byzantine messages). Pattern slots are indexed by the
/// environment view's *global* asynchronous-round offset, so one flat
/// script addresses every window of a multi-window timeline.
struct ScriptedAdversary {
    strategy: Strategy,
}

impl Adversary for ScriptedAdversary {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn send(&mut self, _ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        Vec::new()
    }

    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_>,
        receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        let offset = ctx.env.global_offset as usize;
        let pattern = self.strategy.pattern(offset, receiver);
        available
            .iter()
            .filter(|msg| pattern.admits(msg.sender))
            .map(|msg| msg.index)
            .collect()
    }
}

/// The verdict of an exhaustive sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Strategies executed.
    pub strategies_run: u64,
    /// Strategy indices that produced agreement violations among
    /// **post-window** decisions — what Theorem 3's proof forbids.
    pub violating: Vec<u64>,
    /// Strategy indices that produced `D_ra` conflicts (Definition 5).
    pub dra_violating: Vec<u64>,
    /// Strategy indices whose only conflicts involve a decision made
    /// *inside* the window (orphanable in-window decisions — outside the
    /// paper's guarantees; see EXPERIMENTS.md).
    pub orphaning_only: Vec<u64>,
}

impl ExploreReport {
    /// Whether no strategy broke any *guaranteed* property (Definition 5
    /// and post-window agreement). In-window orphanings are reported
    /// separately via [`ExploreReport::orphaning_only`].
    pub fn all_safe(&self) -> bool {
        self.violating.is_empty() && self.dra_violating.is_empty()
    }
}

/// A network-wide pattern applied for one whole asynchronous round — the
/// coarse menu of the *coupled* exploration mode, which trades
/// per-receiver freedom for longer windows (`5^π` instead of `4^(n·π)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundPattern {
    /// Synchronous behaviour.
    All,
    /// Total blackout.
    Nothing,
    /// Parity partition: every receiver gets only same-parity senders.
    Partition,
    /// Even receivers get nothing; odd receivers get everything.
    EclipseEvens,
    /// Odd receivers get nothing; even receivers get everything.
    EclipseOdds,
}

impl RoundPattern {
    /// The coupled-mode menu, in enumeration order.
    pub const MENU: [RoundPattern; 5] = [
        RoundPattern::All,
        RoundPattern::Nothing,
        RoundPattern::Partition,
        RoundPattern::EclipseEvens,
        RoundPattern::EclipseOdds,
    ];

    fn admits(self, sender: ProcessId, receiver: ProcessId) -> bool {
        match self {
            RoundPattern::All => true,
            RoundPattern::Nothing => false,
            RoundPattern::Partition => sender.index() % 2 == receiver.index() % 2,
            RoundPattern::EclipseEvens => receiver.index() % 2 == 1,
            RoundPattern::EclipseOdds => receiver.index().is_multiple_of(2),
        }
    }
}

/// A coupled strategy: one [`RoundPattern`] per asynchronous round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoupledStrategy {
    patterns: Vec<RoundPattern>,
}

impl CoupledStrategy {
    /// Decodes strategy number `index` (base-5 digits over `pi` rounds).
    pub fn decode(index: u64, pi: u64) -> CoupledStrategy {
        let m = RoundPattern::MENU.len() as u64;
        let mut digits = index;
        let patterns = (0..pi)
            .map(|_| {
                let d = (digits % m) as usize;
                digits /= m;
                RoundPattern::MENU[d]
            })
            .collect();
        CoupledStrategy { patterns }
    }

    /// Strategy-space size for a `pi`-round window.
    pub fn space_size(pi: u64) -> u64 {
        (RoundPattern::MENU.len() as u64).pow(pi as u32)
    }

    /// The pattern for the `offset`-th asynchronous round.
    pub fn pattern(&self, offset: usize) -> RoundPattern {
        self.patterns
            .get(offset)
            .copied()
            .unwrap_or(RoundPattern::All)
    }
}

struct CoupledAdversary {
    strategy: CoupledStrategy,
}

impl Adversary for CoupledAdversary {
    fn name(&self) -> &'static str {
        "scripted-coupled"
    }

    fn send(&mut self, _ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        Vec::new()
    }

    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_>,
        receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        let offset = ctx.env.global_offset as usize;
        let pattern = self.strategy.pattern(offset);
        available
            .iter()
            .filter(|msg| pattern.admits(msg.sender, receiver))
            .map(|msg| msg.index)
            .collect()
    }
}

/// Exhausts the coupled strategy space (`5^π` runs): every sequence of
/// network-wide round patterns. Reaches windows the per-receiver mode
/// cannot (`π = 3, 4`) at the price of coarser adversary granularity.
/// The single-window form of [`exhaustive_check_coupled_timeline`]
/// (`async_window` is a pure alias for the one-segment timeline).
pub fn exhaustive_check_coupled(
    params: Params,
    window: AsyncWindow,
    horizon: u64,
) -> ExploreReport {
    let timeline = Timeline::synchronous().asynchronous(window.start(), window.pi());
    exhaustive_check_coupled_timeline(params, &timeline, horizon)
}

/// One strategy's verdict: post-window agreement broken, D_ra broken,
/// and orphaning-only conflicts present.
#[derive(Clone, Copy, Debug, Default)]
struct Verdict {
    post_window_broken: bool,
    dra_broken: bool,
    orphaning_only: bool,
}

fn classify(outcome: &crate::SimReport) -> Verdict {
    let post = !outcome.post_window_violations().is_empty();
    Verdict {
        post_window_broken: post,
        dra_broken: !outcome.resilience_violations.is_empty(),
        orphaning_only: !post && !outcome.safety_violations.is_empty(),
    }
}

/// Runs one scripted strategy.
fn run_strategy(params: Params, window: AsyncWindow, horizon: u64, index: u64) -> Verdict {
    let strategy = Strategy::decode(index, params.n(), window.pi());
    let report = SimBuilder::from_config(
        SimConfig::new(params, 1)
            .horizon(horizon)
            .async_window(window),
    )
    .schedule(Schedule::full(params.n(), horizon))
    .adversary(ScriptedAdversary { strategy })
    .run();
    classify(&report)
}

/// Total asynchronous rounds of a timeline (the coupled strategy space
/// exponent for [`exhaustive_check_coupled_timeline`]).
fn async_rounds_of(timeline: &Timeline) -> u64 {
    timeline
        .windows()
        .iter()
        .filter(|w| w.kind() == SegmentKind::Asynchronous)
        .map(|w| w.len())
        .sum()
}

/// Exhausts the coupled strategy space over an arbitrary **timeline**
/// (`5^k` runs for `k` total asynchronous rounds across all windows):
/// every sequence of network-wide round patterns, applied to the
/// timeline's asynchronous rounds in order. This is how Theorem 2's
/// *every-spell* form is checked exhaustively: with two windows the
/// menu contains, e.g., "behave synchronously in the first window, run
/// the partition play in the second".
///
/// # Panics
///
/// Panics if the timeline contains bounded-delay windows (their delivery
/// is environment-driven, not scripted).
pub fn exhaustive_check_coupled_timeline(
    params: Params,
    timeline: &Timeline,
    horizon: u64,
) -> ExploreReport {
    assert!(
        timeline
            .windows()
            .iter()
            .all(|w| w.kind() == SegmentKind::Asynchronous),
        "scripted exploration covers asynchronous windows only"
    );
    let rounds = async_rounds_of(timeline);
    let total = CoupledStrategy::space_size(rounds);
    let verdicts = Sweep::over(0..total).run(|&index, _seed| {
        let strategy = CoupledStrategy::decode(index, rounds);
        let report = SimBuilder::from_config(
            SimConfig::new(params, 1)
                .horizon(horizon)
                .timeline(timeline.clone()),
        )
        .schedule(Schedule::full(params.n(), horizon))
        .adversary(CoupledAdversary { strategy })
        .run();
        classify(&report)
    });
    collect_verdicts(total, &verdicts)
}

/// Folds per-strategy verdicts (in strategy order) into an
/// [`ExploreReport`].
fn collect_verdicts(total: u64, verdicts: &[Verdict]) -> ExploreReport {
    let mut report = ExploreReport {
        strategies_run: total,
        violating: Vec::new(),
        dra_violating: Vec::new(),
        orphaning_only: Vec::new(),
    };
    for (index, verdict) in verdicts.iter().enumerate() {
        let index = index as u64;
        if verdict.post_window_broken {
            report.violating.push(index);
        }
        if verdict.dra_broken {
            report.dra_violating.push(index);
        }
        if verdict.orphaning_only {
            report.orphaning_only.push(index);
        }
    }
    report
}

/// Runs the protocol under **every** strategy in the space (a parallel
/// [`Sweep`] over the strategy indices — deterministic per index, so
/// parallelism only changes wall-clock) and reports the violating ones.
///
/// Cost is `|menu|^(n·π)` simulations — keep `n ≤ 4` and `π ≤ 2`
/// (`4^8 = 65 536` runs) unless you have time to spare.
pub fn exhaustive_check(params: Params, window: AsyncWindow, horizon: u64) -> ExploreReport {
    let total = Strategy::space_size(params.n(), window.pi());
    let verdicts =
        Sweep::over(0..total).run(|&index, _seed| run_strategy(params, window, horizon, index));
    collect_verdicts(total, &verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::Round;

    #[test]
    fn strategy_codec_roundtrips_the_space() {
        let n = 3;
        let pi = 1;
        let total = Strategy::space_size(n, pi);
        assert_eq!(total, 64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let s = Strategy::decode(i, n, pi);
            assert!(seen.insert(format!("{:?}", s.patterns)), "duplicate at {i}");
        }
    }

    #[test]
    fn pattern_admission() {
        assert!(DeliveryPattern::All.admits(ProcessId::new(1)));
        assert!(!DeliveryPattern::Nothing.admits(ProcessId::new(1)));
        assert!(DeliveryPattern::EvenSenders.admits(ProcessId::new(2)));
        assert!(!DeliveryPattern::EvenSenders.admits(ProcessId::new(3)));
        assert!(DeliveryPattern::OddSenders.admits(ProcessId::new(3)));
    }

    #[test]
    fn out_of_window_pattern_defaults_to_all() {
        let s = Strategy::decode(0, 2, 1);
        assert_eq!(s.pattern(5, ProcessId::new(0)), DeliveryPattern::All);
        assert_eq!(s.pattern(0, ProcessId::new(9)), DeliveryPattern::All);
    }

    /// One-round exhaustive sweep at n = 4: the extended protocol must
    /// survive **all 256** delivery strategies; this is Theorem 2 checked
    /// exhaustively (within the menu) rather than sampled.
    #[test]
    fn extended_survives_every_one_round_strategy() {
        let params = Params::builder(4).expiration(3).build().unwrap();
        let window = AsyncWindow::new(Round::new(10), 1);
        let report = exhaustive_check(params, window, 18);
        assert_eq!(report.strategies_run, 256);
        assert!(
            report.all_safe(),
            "violating strategies: {:?} / {:?}",
            report.violating,
            report.dra_violating
        );
    }

    /// Two one-round asynchronous windows, coupled sweep over both
    /// (`5² = 25` scripts, including "behave synchronously in the first
    /// window, attack only the second"): the extended protocol with
    /// `η = 3` must survive every one — Theorem 2's every-spell form.
    #[test]
    fn coupled_timeline_sweep_covers_both_windows() {
        let params = Params::builder(4).expiration(3).build().unwrap();
        let timeline = Timeline::synchronous()
            .asynchronous(Round::new(10), 1)
            .asynchronous(Round::new(16), 1);
        let report = exhaustive_check_coupled_timeline(params, &timeline, 24);
        assert_eq!(report.strategies_run, 25);
        assert!(
            report.all_safe(),
            "violating strategies: {:?} / {:?}",
            report.violating,
            report.dra_violating
        );
    }

    #[test]
    fn coupled_codec_roundtrips() {
        let total = CoupledStrategy::space_size(3);
        assert_eq!(total, 125);
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let s = CoupledStrategy::decode(i, 3);
            assert!(seen.insert(format!("{:?}", s.patterns)));
        }
    }

    /// Coupled three-round sweep: the menu contains the partition play,
    /// so vanilla MMR must fall to at least one strategy while the
    /// extended protocol survives all 125.
    #[test]
    fn coupled_sweep_separates_vanilla_from_extended() {
        let window = AsyncWindow::new(Round::new(10), 3);
        let vanilla = exhaustive_check_coupled(
            Params::builder(4).expiration(0).build().unwrap(),
            window,
            22,
        );
        assert!(
            vanilla.violating.len() + vanilla.orphaning_only.len() > 0,
            "no witness found against vanilla MMR at π = 3"
        );
        let extended = exhaustive_check_coupled(
            Params::builder(4).expiration(4).build().unwrap(),
            window,
            26,
        );
        assert!(
            extended.all_safe(),
            "extended protocol broken by coupled strategies {:?}",
            extended.violating
        );
        assert!(
            extended.orphaning_only.is_empty(),
            "unexpected orphanings at π = 3 < η = 4: {:?}",
            extended.orphaning_only
        );
    }
}
