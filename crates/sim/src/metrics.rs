//! Round-by-round execution time series.
//!
//! The scalar [`crate::SimReport`] answers "did the run satisfy the
//! definitions"; the [`RoundTrace`] answers *when*: chain growth round by
//! round, participation, message volume and decision activity. Experiment
//! binaries use it to show, e.g., that the chain kept growing *during*
//! the mass-sleep incident rather than merely recovering afterwards.

use serde::Serialize;
use st_types::Round;

/// Per-round execution cost, measured by the runner when instrumentation
/// is on ([`crate::SimConfig::instrument`]) and all-zero otherwise — the
/// zeros keep instrument-off reports byte-identical across code paths,
/// which is what the determinism-equivalence suites compare.
///
/// The phase attribution: `tally_us` is the runner-side shared-tally
/// cohort pass (certification + the one representative tally per
/// cohort); per-process fallback tallies run *inside* `step_send` and
/// therefore land in `step_send_us`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RoundCost {
    /// Microseconds spent in the honest send phase (`step_send` calls,
    /// including any per-process fallback tallies, plus send-side
    /// bookkeeping).
    pub step_send_us: u64,
    /// Microseconds spent in the receive phase (delivery to honest
    /// receivers and corrupted machines, plus pool compaction).
    pub delivery_us: u64,
    /// Microseconds spent in the shared-tally cohort pass.
    pub tally_us: u64,
    /// Honest `step_send` tallies served from a cohort-shared result
    /// this round.
    pub tally_cache_hits: u64,
    /// Honest `step_send` tallies computed rather than served (cohort
    /// representatives, singleton cohorts, uncertified fallbacks).
    pub tally_cache_misses: u64,
}

/// One round's sample.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RoundSample {
    /// The sampled round.
    pub round: u64,
    /// `|H_r|` — honest processes awake at the round's beginning.
    pub honest_awake: usize,
    /// `|B_r|` — Byzantine processes.
    pub byzantine: usize,
    /// Whether the round was inside an asynchronous window.
    pub is_async: bool,
    /// The bounded-delay `Δ` if the round was inside a bounded-delay
    /// window, `None` otherwise.
    pub delta: Option<u64>,
    /// Whether a partition event overlaid the round.
    pub partitioned: bool,
    /// Messages sent during the round (honest + adversarial).
    pub messages_sent: usize,
    /// Messages delivered to honest receivers in the round's receive
    /// phase (excludes the corrupted machines' full-knowledge feed). 0
    /// across a blackout; throttled during partitions and bounded-delay
    /// segments.
    pub messages_delivered: usize,
    /// Decision events recorded this round across all honest processes.
    pub decisions: usize,
    /// Maximum decided-log height over honest processes after the round.
    pub max_decided_height: u64,
    /// Minimum decided-log height over honest *awake* processes.
    pub min_decided_height: u64,
    /// Honest send-phase microseconds (0 unless instrumented; see
    /// [`RoundCost::step_send_us`]).
    pub step_send_us: u64,
    /// Receive-phase microseconds (0 unless instrumented; see
    /// [`RoundCost::delivery_us`]).
    pub delivery_us: u64,
    /// Shared-tally cohort-pass microseconds (0 unless instrumented; see
    /// [`RoundCost::tally_us`]).
    pub tally_us: u64,
    /// Tallies served from the shared cache this round (0 unless
    /// instrumented).
    pub tally_cache_hits: u64,
    /// Tallies computed rather than served (0 unless instrumented).
    pub tally_cache_misses: u64,
}

/// The per-round history of a simulation.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RoundTrace {
    samples: Vec<RoundSample>,
}

impl RoundTrace {
    /// An empty timeline.
    pub fn new() -> RoundTrace {
        RoundTrace::default()
    }

    /// Appends a sample (rounds must be pushed in order).
    pub(crate) fn push(&mut self, sample: RoundSample) {
        debug_assert!(
            self.samples
                .last()
                .map(|s| s.round < sample.round)
                .unwrap_or(true),
            "timeline samples must be pushed in round order"
        );
        self.samples.push(sample);
    }

    /// All samples, in round order.
    pub fn samples(&self) -> &[RoundSample] {
        &self.samples
    }

    /// Number of sampled rounds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no rounds were sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample for a specific round, if recorded.
    pub fn at(&self, round: Round) -> Option<&RoundSample> {
        self.samples
            .binary_search_by_key(&round.as_u64(), |s| s.round)
            .ok()
            .map(|i| &self.samples[i])
    }

    /// Chain growth (max decided height delta) over a closed round range.
    pub fn growth_in(&self, from: Round, to: Round) -> u64 {
        let h = |r: Round| self.at(r).map(|s| s.max_decided_height);
        match (h(from), h(to)) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        }
    }

    /// Rounds in the range with at least one decision event.
    pub fn deciding_rounds_in(&self, from: Round, to: Round) -> usize {
        self.samples
            .iter()
            .filter(|s| s.round >= from.as_u64() && s.round <= to.as_u64() && s.decisions > 0)
            .count()
    }

    /// Total messages sent over the whole run.
    pub fn total_messages(&self) -> usize {
        self.samples.iter().map(|s| s.messages_sent).sum()
    }

    /// Mean messages per round.
    pub fn mean_messages_per_round(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total_messages() as f64 / self.samples.len() as f64
    }

    /// Fraction of instrumented honest tallies served from the shared
    /// cache over the whole run: `hits / (hits + misses)`, or 0.0 when
    /// nothing was instrumented. On a fully synchronous full-participation
    /// run this approaches `(n − 1) / n` — one computed tally per round,
    /// shared with everyone else.
    pub fn tally_cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.samples.iter().map(|s| s.tally_cache_hits).sum();
        let misses: u64 = self.samples.iter().map(|s| s.tally_cache_misses).sum();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// The largest spread between the most- and least-advanced honest
    /// awake process over the run — a divergence indicator (large spreads
    /// appear during asynchrony and close again after healing).
    pub fn max_height_spread(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.max_decided_height.saturating_sub(s.min_decided_height))
            .max()
            .unwrap_or(0)
    }

    /// Renders a CSV of the full series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,honest_awake,byzantine,is_async,delta,partitioned,messages_sent,messages_delivered,decisions,\
             max_decided_height,min_decided_height,step_send_us,delivery_us,tally_us,tally_cache_hits,\
             tally_cache_misses\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.round,
                s.honest_awake,
                s.byzantine,
                s.is_async,
                s.delta.map(|d| d.to_string()).unwrap_or_default(),
                s.partitioned,
                s.messages_sent,
                s.messages_delivered,
                s.decisions,
                s.max_decided_height,
                s.min_decided_height,
                s.step_send_us,
                s.delivery_us,
                s.tally_us,
                s.tally_cache_hits,
                s.tally_cache_misses
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64, decisions: usize, max_h: u64, min_h: u64) -> RoundSample {
        RoundSample {
            round,
            honest_awake: 8,
            byzantine: 2,
            is_async: false,
            delta: None,
            partitioned: false,
            messages_sent: 10,
            messages_delivered: 10,
            decisions,
            max_decided_height: max_h,
            min_decided_height: min_h,
            ..RoundSample::default()
        }
    }

    fn timeline() -> RoundTrace {
        let mut t = RoundTrace::new();
        t.push(sample(0, 0, 0, 0));
        t.push(sample(1, 0, 0, 0));
        t.push(sample(2, 3, 1, 0));
        t.push(sample(3, 0, 1, 1));
        t.push(sample(4, 5, 2, 1));
        t
    }

    #[test]
    fn lookup_and_growth() {
        let t = timeline();
        assert_eq!(t.len(), 5);
        assert_eq!(t.at(Round::new(2)).unwrap().decisions, 3);
        assert!(t.at(Round::new(9)).is_none());
        assert_eq!(t.growth_in(Round::new(0), Round::new(4)), 2);
        assert_eq!(t.growth_in(Round::new(2), Round::new(3)), 0);
        // Out-of-range endpoints yield zero growth.
        assert_eq!(t.growth_in(Round::new(0), Round::new(99)), 0);
    }

    #[test]
    fn deciding_rounds_and_messages() {
        let t = timeline();
        assert_eq!(t.deciding_rounds_in(Round::new(0), Round::new(4)), 2);
        assert_eq!(t.deciding_rounds_in(Round::new(3), Round::new(3)), 0);
        assert_eq!(t.total_messages(), 50);
        assert!((t.mean_messages_per_round() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn height_spread() {
        let t = timeline();
        assert_eq!(t.max_height_spread(), 1);
        assert_eq!(RoundTrace::new().max_height_spread(), 0);
    }

    #[test]
    fn cache_hit_rate_is_the_run_wide_ratio() {
        let mut t = RoundTrace::new();
        let mut a = sample(0, 0, 0, 0);
        a.tally_cache_hits = 9;
        a.tally_cache_misses = 1;
        let mut b = sample(1, 0, 0, 0);
        b.tally_cache_hits = 3;
        b.tally_cache_misses = 7;
        t.push(a);
        t.push(b);
        assert!((t.tally_cache_hit_rate() - 0.6).abs() < 1e-9);
        // Uninstrumented runs (all zeros) report 0.0, not NaN.
        assert_eq!(timeline().tally_cache_hit_rate(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = timeline();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("round,"));
    }
}
