//! Property-based tests of the network's delivery semantics: whatever
//! interleaving of synchronous and adversarial deliveries happens, every
//! message reaches every addressee exactly once, and only after its send
//! round.

use proptest::prelude::*;
use st_crypto::Keypair;
use st_messages::{Envelope, Payload, Vote};
use st_sim::{Network, Recipients};
use st_types::{BlockId, ProcessId, Round};
use std::collections::HashMap;

fn envelope(sender: u32, round: u64, tip: u64) -> Envelope {
    let kp = Keypair::derive(ProcessId::new(sender), 1);
    Envelope::sign(
        &kp,
        Payload::Vote(Vote::new(
            ProcessId::new(sender),
            Round::new(round),
            BlockId::new(tip),
        )),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random send schedule + random async/sync rounds + random
    /// adversarial delivery subsets ⇒ exactly-once delivery to every
    /// addressee by the end (a final synchronous sweep collects leftovers).
    #[test]
    fn exactly_once_delivery(
        sends in prop::collection::vec((0u32..4, 0u8..2), 1..40),
        async_rounds in prop::collection::vec(any::<bool>(), 8),
        picks in prop::collection::vec(any::<u8>(), 32),
    ) {
        let n = 4usize;
        let mut net = Network::new(n);
        // Spread the sends over rounds 1..=8, tagging each with a unique
        // tip so deliveries are distinguishable.
        let mut sent: Vec<(usize, Round, ProcessId, Recipients)> = Vec::new();
        for (i, &(sender, targeting)) in sends.iter().enumerate() {
            let round = Round::new(1 + (i as u64 * 8) / sends.len() as u64);
            let recipients = if targeting == 0 {
                Recipients::All
            } else {
                Recipients::Only(vec![ProcessId::new((sender + 1) % n as u32)])
            };
            net.send(round, ProcessId::new(sender), recipients.clone(), envelope(sender, round.as_u64(), i as u64));
            sent.push((i, round, ProcessId::new(sender), recipients));
        }

        // Delivery tally per (receiver, message index).
        let mut delivered: HashMap<(u32, u64), usize> = HashMap::new();
        let mut tally = |p: ProcessId, envs: &[st_messages::SharedEnvelope]| {
            for env in envs {
                let Payload::Vote(v) = env.payload() else { unreachable!() };
                *delivered.entry((p.as_u32(), v.tip().as_u64())).or_insert(0) += 1;
            }
        };

        let mut pick_idx = 0;
        for r in 1..=8u64 {
            let round = Round::new(r);
            let is_async = async_rounds[(r - 1) as usize];
            for p in 0..n {
                let pid = ProcessId::new(p as u32);
                if is_async {
                    // Adversary delivers a pseudo-random subset.
                    let available: Vec<usize> =
                        net.available_for(pid, round).iter().map(|m| m.index).collect();
                    let chosen: Vec<usize> = available
                        .iter()
                        .copied()
                        .filter(|_| {
                            pick_idx += 1;
                            picks[pick_idx % picks.len()] % 2 == 0
                        })
                        .collect();
                    let envs = net.deliver_async(pid, round, &chosen);
                    tally(pid, &envs);
                } else {
                    let envs = net.deliver_sync(pid, round);
                    tally(pid, &envs);
                }
            }
        }
        // Final synchronous sweep: everything still pending arrives.
        for p in 0..n {
            let pid = ProcessId::new(p as u32);
            let envs = net.deliver_sync(pid, Round::new(9));
            tally(pid, &envs);
        }

        // Exactly-once to every addressee, never to non-addressees.
        for (i, _round, _sender, recipients) in &sent {
            for p in 0..n as u32 {
                let times = delivered.get(&(p, *i as u64)).copied().unwrap_or(0);
                if recipients.includes(ProcessId::new(p)) {
                    prop_assert_eq!(times, 1, "message {} delivered {} times to p{}", i, times, p);
                } else {
                    prop_assert_eq!(times, 0, "message {} leaked to non-addressee p{}", i, p);
                }
            }
        }
    }

    /// Pool compaction is invisible: interleaving `compact()` anywhere in
    /// a delivery schedule never changes what `deliver_sync` or
    /// `available_for` return, and global indices stay valid.
    #[test]
    fn compaction_never_changes_delivery(
        sends in prop::collection::vec((0u32..4, 0u8..2), 1..40),
        async_rounds in prop::collection::vec(any::<bool>(), 8),
        picks in prop::collection::vec(any::<u8>(), 32),
        compact_after in prop::collection::vec(any::<bool>(), 8),
    ) {
        let n = 4usize;
        let mut compacted = Network::new(n);
        let mut reference = Network::new(n);
        for (i, &(sender, targeting)) in sends.iter().enumerate() {
            let round = Round::new(1 + (i as u64 * 8) / sends.len() as u64);
            let recipients = if targeting == 0 {
                Recipients::All
            } else {
                Recipients::Only(vec![ProcessId::new((sender + 1) % n as u32)])
            };
            for net in [&mut compacted, &mut reference] {
                net.send(
                    round,
                    ProcessId::new(sender),
                    recipients.clone(),
                    envelope(sender, round.as_u64(), i as u64),
                );
            }
        }

        let mut pick_idx = 0;
        for r in 1..=8u64 {
            let round = Round::new(r);
            let is_async = async_rounds[(r - 1) as usize];
            for p in 0..n {
                let pid = ProcessId::new(p as u32);
                // Availability agrees (same global indices, same order).
                let avail_c: Vec<usize> =
                    compacted.available_for(pid, round).iter().map(|m| m.index).collect();
                let avail_r: Vec<usize> =
                    reference.available_for(pid, round).iter().map(|m| m.index).collect();
                prop_assert_eq!(&avail_c, &avail_r, "available_for diverged at round {}", r);
                if is_async {
                    let chosen: Vec<usize> = avail_c
                        .iter()
                        .copied()
                        .filter(|_| {
                            pick_idx += 1;
                            picks[pick_idx % picks.len()] % 2 == 0
                        })
                        .collect();
                    let got_c = compacted.deliver_async(pid, round, &chosen);
                    let got_r = reference.deliver_async(pid, round, &chosen);
                    prop_assert_eq!(got_c, got_r, "deliver_async diverged at round {}", r);
                } else {
                    let got_c = compacted.deliver_sync(pid, round);
                    let got_r = reference.deliver_sync(pid, round);
                    prop_assert_eq!(got_c, got_r, "deliver_sync diverged at round {}", r);
                }
            }
            if compact_after[(r - 1) as usize] {
                compacted.compact();
            }
            prop_assert_eq!(compacted.messages_sent(), reference.messages_sent());
        }
        // Final sweep agrees, and a fully-delivered pool compacts away.
        for p in 0..n {
            let pid = ProcessId::new(p as u32);
            prop_assert_eq!(
                compacted.deliver_sync(pid, Round::new(9)),
                reference.deliver_sync(pid, Round::new(9))
            );
        }
        compacted.compact();
        prop_assert_eq!(compacted.pool().len(), 0, "fully-delivered pool retained messages");
        prop_assert_eq!(compacted.pool_base(), compacted.messages_sent());
    }

    /// Messages are never delivered before their send round.
    #[test]
    fn no_delivery_from_the_future(sends in prop::collection::vec(1u64..8, 1..20)) {
        let mut net = Network::new(1);
        let mut rounds: Vec<u64> = sends.clone();
        rounds.sort_unstable();
        for (i, &r) in rounds.iter().enumerate() {
            net.send(Round::new(r), ProcessId::new(0), Recipients::All, envelope(0, r, i as u64));
        }
        let p = ProcessId::new(0);
        for r in 0..=8u64 {
            let envs = net.deliver_sync(p, Round::new(r));
            for env in envs {
                let Payload::Vote(v) = env.payload() else { unreachable!() };
                prop_assert!(v.round().as_u64() <= r, "future delivery at round {}", r);
            }
        }
    }
}
