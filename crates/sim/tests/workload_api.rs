//! Integration tests for the open-loop workload layer (st-load threaded
//! through the simulator): saturation behaviour, fairness drops, the
//! diurnal workload↔schedule coupling, and the latency pipeline's
//! end-to-end accounting in [`st_sim::SimReport`].

use st_sim::{
    diurnal_schedule, ConstantRate, Diurnal, FlashCrowd, Schedule, SimBuilder, Workload,
    WorkloadSpec,
};
use st_types::Params;

fn params(n: usize) -> Params {
    Params::builder(n)
        .expiration(2)
        .churn_rate(0.05)
        .build()
        .expect("valid params")
}

/// An under-provisioned service rate piles up a backlog: offered load 6/round
/// against a batch of 2 leaves the mempool saturated, the capacity cap
/// dropping arrivals, and tail latency far above the uncongested base.
#[test]
fn saturation_knee_shows_in_backlog_drops_and_latency() {
    let horizon = 40;
    let congested = SimBuilder::new(params(6), 7)
        .horizon(horizon)
        .workload_spec(
            WorkloadSpec::new(ConstantRate::per_round(6))
                .capacity(16)
                .batch(2),
        )
        .schedule(Schedule::full(6, horizon))
        .run();

    let w = &congested.workload;
    assert_eq!(w.generator, "constant-rate");
    assert_eq!(w.offered, 6 * horizon, "open loop: arrivals ignore service");
    assert!(
        w.dropped_capacity > 0,
        "offered 6/round vs batch 2 must overflow capacity 16: {w:?}"
    );
    assert_eq!(w.mempool_high_water, 16, "queue pinned at capacity");
    assert!(w.drop_rate > 0.0 && w.drop_rate < 1.0);
    assert_eq!(
        w.offered,
        w.admitted + w.dropped_capacity + w.dropped_fairness + w.dropped_asleep,
        "admission accounting must balance"
    );
    assert_eq!(w.admitted, w.submitted + w.backlog);

    // The same offered load with ample service shows no congestion…
    let uncongested = SimBuilder::new(params(6), 7)
        .horizon(horizon)
        .workload_spec(
            WorkloadSpec::new(ConstantRate::per_round(6))
                .capacity(1024)
                .batch(16),
        )
        .schedule(Schedule::full(6, horizon))
        .run();
    assert_eq!(uncongested.workload.dropped_capacity, 0);
    // …and a strictly lower p99: queueing delay is the knee.
    let congested_p99 = w.latency_p99.expect("congested run decided txs");
    let uncongested_p99 = uncongested
        .workload
        .latency_p99
        .expect("uncongested run decided txs");
    assert!(
        congested_p99 > uncongested_p99,
        "queueing must show in the tail: congested p99 {congested_p99} \
         vs uncongested {uncongested_p99}"
    );
}

/// A client flooding past its fair share is clipped by the fairness cap
/// while the queue still has room for the others.
#[test]
fn fairness_cap_clips_a_flooding_client() {
    // 4 clients share capacity 8 → fairness cap 2 each. A flash burst
    // pushes bursts of arrivals (round-robin across clients) far past
    // both caps; fairness drops must appear alongside capacity drops.
    let horizon = 30;
    let burst = FlashCrowd::new(1).clients(4).burst(5, 10, 12).jitter(5);
    let report = SimBuilder::new(params(5), 11)
        .horizon(horizon)
        .workload_spec(WorkloadSpec::new(burst).capacity(8).batch(1))
        .schedule(Schedule::full(5, horizon))
        .run();

    let w = &report.workload;
    assert_eq!(w.generator, "flash-crowd");
    assert_eq!(w.clients, 4);
    assert!(
        w.dropped_fairness > 0,
        "burst arrivals past the per-client cap must be clipped: {w:?}"
    );
    assert_eq!(
        w.offered,
        w.admitted + w.dropped_capacity + w.dropped_fairness + w.dropped_asleep
    );
}

/// The diurnal coupling: participation and offered load derived from the
/// same trace. Held-over queue-rounds appear only when the schedule has
/// proposer-less rounds — which `diurnal_schedule` never produces (at
/// least one process stays awake), so latency stays finite through the
/// trough while throughput tracks the awake fraction.
#[test]
fn diurnal_workload_couples_to_its_derived_schedule() {
    let horizon = 48;
    let n = 8;
    let workload = Diurnal::new(4, 0.25, 12);
    let schedule = diurnal_schedule(&workload, n, horizon);
    let report = SimBuilder::new(params(n), 23)
        .horizon(horizon)
        .workload(workload)
        .schedule(schedule)
        .run();

    let w = &report.workload;
    assert_eq!(w.generator, "diurnal");
    assert!(w.offered > 0, "diurnal trace offers load at peaks");
    assert!(w.decided > 0, "peak-round txs must decide: {w:?}");
    assert!(w.latency_p50.is_some() && w.latency_p99.is_some());
    assert_eq!(
        w.held_over, 0,
        "derived schedule always keeps a proposer awake"
    );
    assert!(
        report.safety_violations.is_empty(),
        "diurnal churn must not break safety"
    );
}

/// The tx ledger populates `decided_round` and the latency join is exact:
/// every decided record's latency equals `decided_round - submitted`, and
/// the report percentiles match a recomputation from the records.
#[test]
fn decided_round_and_percentiles_join_exactly() {
    let horizon = 32;
    let report = SimBuilder::new(params(6), 41)
        .horizon(horizon)
        .workload_spec(WorkloadSpec::new(ConstantRate::per_round(2)).batch(4))
        .schedule(Schedule::full(6, horizon))
        .run();

    let mut latencies: Vec<u64> = report
        .txs
        .iter()
        .filter_map(|rec| rec.decide_latency())
        .collect();
    assert!(!latencies.is_empty(), "full schedule must decide txs");
    assert_eq!(report.workload.decided, latencies.len() as u64);
    for rec in &report.txs {
        if let Some(decided) = rec.decided_round {
            assert!(
                decided >= rec.submitted.as_u64(),
                "decision cannot precede submission"
            );
        }
    }
    latencies.sort_unstable();
    let rank = |p: f64| {
        let n = latencies.len();
        let r = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        latencies[r - 1]
    };
    assert_eq!(report.workload.latency_p50, Some(rank(50.0)));
    assert_eq!(report.workload.latency_p90, Some(rank(90.0)));
    assert_eq!(report.workload.latency_p99, Some(rank(99.0)));
    let sum: u64 = latencies.iter().sum();
    let mean = sum as f64 / latencies.len() as f64;
    assert!((report.workload.latency_mean.unwrap() - mean).abs() < 1e-9);
    // Throughput is decided per executed round.
    let expect = latencies.len() as f64 / (report.rounds_run + 1) as f64;
    assert!((report.workload.throughput - expect).abs() < 1e-12);
}

/// Runs without a configured workload leave the summary at its zero
/// default — no phantom accounting on legacy-free configs.
#[test]
fn no_workload_leaves_summary_empty() {
    let horizon = 12;
    let report = SimBuilder::new(params(5), 3)
        .horizon(horizon)
        .schedule(Schedule::full(5, horizon))
        .run();
    let w = &report.workload;
    assert!(w.generator.is_empty());
    assert_eq!(w.offered, 0);
    assert_eq!(w.decided, 0);
    assert!(w.latency_p50.is_none());
    assert!(report.txs.is_empty());
}

/// The trait-object surface works end to end: a boxed generator behind
/// `dyn Workload` drives the same pipeline (exercises the `Workload`
/// object-safety the spec relies on).
#[test]
fn workload_trait_objects_drive_the_pipeline() {
    let boxed: Box<dyn Workload> = Box::new(ConstantRate::every(3));
    assert_eq!(boxed.name(), "constant-rate");
    assert_eq!(boxed.arrivals(6, 0), 1);
    assert_eq!(boxed.arrivals(7, 0), 0);
    let horizon = 18;
    let report = SimBuilder::new(params(4), 9)
        .horizon(horizon)
        .workload(ConstantRate::every(3))
        .schedule(Schedule::full(4, horizon))
        .run();
    assert_eq!(report.workload.offered, horizon / 3);
    assert_eq!(report.workload.submitted, horizon / 3);
}
