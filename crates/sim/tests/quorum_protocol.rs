//! The in-simulator fixed-quorum baseline, held to its spec.
//!
//! Two kinds of guard:
//!
//! * **Analytical cross-check** — the closed-form schedule walk
//!   (`st_sim::baseline::StaticQuorumBft`) predicts, per view, whether
//!   the static quorum is met on an honest synchronous schedule. The
//!   message-passing [`QuorumProcess`] must decide exactly the predicted
//!   views and stall exactly the predicted ones.
//! * **Property tests** — the module-doc claims, executed: under full
//!   participation every view decides; when more than a third of the
//!   processes sleep, no affected view ever does.

use proptest::prelude::*;
use st_sim::adversary::{PartitionAttacker, SilentAdversary};
use st_sim::baseline::StaticQuorumBft;
use st_sim::{DecisionTap, Protocol, QuorumProcess, Schedule, SimBuilder, Timeline};
use st_types::{Params, Round};
use std::collections::BTreeSet;

/// Runs the in-simulator baseline over `schedule` and returns the set of
/// decided views (union over processes — under synchrony every awake
/// process decides the same views, sleepers catch up from the backlog).
/// The runner drains decision events into its observers each round, so
/// post-run inspection goes through a [`DecisionTap`].
fn simulated_decided_views(schedule: &Schedule, n: usize, seed: u64) -> BTreeSet<u64> {
    let params = Params::builder(n).build().expect("valid params");
    let (tap, log) = DecisionTap::new(n);
    let mut sim = SimBuilder::<QuorumProcess>::for_protocol(params, seed)
        .horizon(schedule.horizon())
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .observer(tap)
        .build()
        .expect("valid simulation");
    while sim.step().is_some() {}
    let log = log.borrow();
    log.iter()
        .flat_map(|events| events.iter().map(|d| d.view.as_u64()))
        .collect()
}

/// Views the simulation could have decided by the horizon: a view's
/// votes (cast in round `2v`) are integrated at the next send step, so
/// the decision round is `2v + 1`.
fn decidable_by_horizon(view: u64, horizon: u64) -> bool {
    2 * view < horizon
}

/// The cross-check: simulated decided/stalled views must match the
/// analytical `BaselineReport` on honest synchronous schedules, up to
/// the one-round decision lag at the horizon.
fn assert_matches_analytical(schedule: &Schedule, n: usize, seed: u64) {
    let analytical = StaticQuorumBft::new(n).run(schedule);
    let simulated = simulated_decided_views(schedule, n, seed);
    for v in &analytical.decided_views {
        if decidable_by_horizon(v.as_u64(), schedule.horizon()) {
            assert!(
                simulated.contains(&v.as_u64()),
                "analytical decided view {v} missing from simulation (n={n})"
            );
        }
    }
    for v in &analytical.stalled_views {
        assert!(
            !simulated.contains(&v.as_u64()),
            "analytically stalled view {v} decided in simulation (n={n})"
        );
    }
    // And nothing beyond the analytical decided set ever decides.
    let predicted: BTreeSet<u64> = analytical
        .decided_views
        .iter()
        .map(|v| v.as_u64())
        .collect();
    for v in &simulated {
        assert!(
            predicted.contains(v),
            "simulation decided view {v} the analytical walk did not predict (n={n})"
        );
    }
}

#[test]
fn full_participation_matches_analytical_walk() {
    assert_matches_analytical(&Schedule::full(9, 24), 9, 1);
    assert_matches_analytical(&Schedule::full(10, 31), 10, 2);
}

#[test]
fn mass_sleep_matches_analytical_walk() {
    // The B1 shapes: the May-2023 incident (60%), a harsher 80% drop,
    // and a window whose boundaries land mid-view.
    assert_matches_analytical(&Schedule::mass_sleep(20, 80, 0.6, 20, 60), 20, 3);
    assert_matches_analytical(&Schedule::mass_sleep(20, 80, 0.8, 20, 60), 20, 4);
    assert_matches_analytical(&Schedule::mass_sleep(9, 40, 0.5, 7, 21), 9, 5);
    assert_matches_analytical(&Schedule::mass_sleep(12, 40, 0.34, 9, 23), 12, 6);
}

#[test]
fn borderline_third_matches_analytical_walk() {
    // Exactly a third asleep (3 of 9): 6 awake = 2n/3 exactly, which the
    // strict `> 2n/3` rule rejects — both sides must agree the views
    // stall.
    let schedule = Schedule::mass_sleep(9, 30, 1.0 / 3.0, 8, 20);
    let analytical = StaticQuorumBft::new(9).run(&schedule);
    assert!(!analytical.stalled_views.is_empty());
    assert_matches_analytical(&schedule, 9, 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under full participation the baseline decides **every** view whose
    /// decision step fits the horizon — on every process.
    #[test]
    fn full_participation_decides_every_view(
        n in 4usize..13,
        half_views in 4u64..10,
        seed in 0u64..1000,
    ) {
        let horizon = 2 * half_views + 1;
        let params = Params::builder(n).build().expect("valid params");
        let (tap, log) = DecisionTap::new(n);
        let mut sim = SimBuilder::<QuorumProcess>::for_protocol(params, seed)
            .horizon(horizon)
            .observer(tap)
            .build()
            .expect("valid simulation");
        while sim.step().is_some() {}
        let expected: Vec<u64> = (1..=half_views).filter(|&v| 2 * v < horizon).collect();
        for (i, p) in sim.processes().iter().enumerate() {
            let views: Vec<u64> =
                log.borrow()[i].iter().map(|d| d.view.as_u64()).collect();
            prop_assert_eq!(&views, &expected, "process {:?}", p.id());
        }
    }

    /// With strictly more than a third of the processes asleep, no view
    /// whose vote round falls in the sleep window ever decides — the
    /// static quorum over all `n` is unreachable.
    #[test]
    fn over_a_third_sleeping_decides_nothing_in_the_window(
        n in 4usize..13,
        seed in 0u64..1000,
        extra in 0u64..3,
    ) {
        let horizon = 30 + extra;
        // Strictly more than n/3 sleepers.
        let sleepers = n / 3 + 1;
        let frac = sleepers as f64 / n as f64;
        let from = 8;
        let to = 22;
        let schedule = Schedule::mass_sleep(n, horizon, frac, from, to);
        let decided = simulated_decided_views(&schedule, n, seed);
        for v in 1..=horizon / 2 {
            let vote_round = 2 * v;
            if (from..=to).contains(&vote_round) {
                prop_assert!(
                    !decided.contains(&v),
                    "view {} decided with {}/{} asleep",
                    v,
                    sleepers,
                    n
                );
            } else if decidable_by_horizon(v, horizon) && vote_round < from {
                // Sanity: views before the window do decide.
                prop_assert!(decided.contains(&v));
            }
        }
        // And it recovers after the window (horizon leaves room).
        prop_assert!(decided.iter().any(|&v| 2 * v > to), "no recovery after the window");
    }
}

#[test]
fn quorum_baseline_is_safe_but_stalls_through_asynchrony() {
    // The head-to-head shape: a partition-attacked asynchronous window.
    // The baseline stays safe *in this cell* — each partition half is
    // n/2 < 2n/3, so no quorum (and hence no decision, conflicting or
    // otherwise) can form inside the window; note the two-round protocol
    // has no cross-view locking, so this is a property of the delivery
    // pattern, not a general safety proof. The windowed views stall
    // permanently, while the sleepy protocol under the same cell
    // (η > π) recovers — see the exp_baseline_head_to_head bench.
    let n = 9;
    let horizon = 40;
    let params = Params::builder(n).build().expect("valid params");
    let timeline = Timeline::synchronous().asynchronous(Round::new(13), 6);
    let (tap, log) = DecisionTap::new(n);
    let mut sim = SimBuilder::<QuorumProcess>::for_protocol(params, 11)
        .horizon(horizon)
        .timeline(timeline)
        .schedule(Schedule::full(n, horizon))
        .adversary(PartitionAttacker::new())
        .observer(tap)
        .build()
        .expect("valid simulation");
    while sim.step().is_some() {}
    let decided: BTreeSet<u64> = log
        .borrow()
        .iter()
        .flat_map(|events| events.iter().map(|d| d.view.as_u64()))
        .collect();
    let report = sim.finish();
    assert!(report.is_safe(), "{:?}", report.safety_violations);
    // Views whose proposal or vote round fell inside the window (rounds
    // 13..=18: views 7, 8, 9) never reach the full-membership quorum —
    // each partition half is n/2 < 2n/3.
    for v in [7u64, 8, 9] {
        assert!(!decided.contains(&v), "windowed view {v} decided");
    }
    // Synchrony resumes and the baseline decides again.
    assert!(decided.iter().any(|&v| v >= 11), "no post-window recovery");
}
