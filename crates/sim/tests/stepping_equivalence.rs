//! Property-based stepping-equivalence guard: interleaving
//! [`st_sim::Simulation::step`] and [`st_sim::Simulation::run_until`] at
//! **arbitrary** split points must be invisible — the finished
//! [`st_sim::SimReport`] serialises byte-identically to the one-shot
//! [`st_sim::Simulation::run`] across the (adversary × timeline × η)
//! grid. This is the property the deterministic guard-grid test in
//! `determinism_equivalence.rs` spot-checks, quantified over random
//! split schedules.

use proptest::prelude::*;
use st_sim::adversary::{
    Adversary, BlackoutAdversary, PartitionAttacker, ReorgAttacker, SilentAdversary,
};
use st_sim::{Schedule, SimBuilder, SimConfig, Timeline};
use st_types::{Params, Round};

const N: usize = 10;
const HORIZON: u64 = 24;

fn adversary(idx: usize) -> Box<dyn Adversary> {
    match idx {
        0 => Box::new(SilentAdversary),
        1 => Box::new(BlackoutAdversary),
        2 => Box::new(PartitionAttacker::new()),
        _ => Box::new(ReorgAttacker::new()),
    }
}

fn schedule(adv_idx: usize) -> Schedule {
    let schedule = Schedule::full(N, HORIZON);
    if adv_idx == 3 {
        // The reorg attack needs a Byzantine minority to vote for X.
        schedule.with_static_byzantine(3)
    } else {
        schedule
    }
}

fn timeline(idx: usize) -> Timeline {
    match idx {
        0 => Timeline::synchronous(),
        1 => Timeline::synchronous().asynchronous(Round::new(10), 3),
        2 => Timeline::synchronous()
            .asynchronous(Round::new(8), 2)
            .asynchronous(Round::new(16), 2),
        _ => Timeline::synchronous().bounded_delay(Round::new(9), 8, 2),
    }
}

fn config(timeline_idx: usize, eta: u64, seed: u64) -> SimConfig {
    let params = Params::builder(N).expiration(eta).build().expect("valid");
    SimConfig::new(params, seed)
        .horizon(HORIZON)
        .txs_every(4)
        .timeline(timeline(timeline_idx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of `step()` and `run_until()` — including
    /// backwards (no-op) and beyond-horizon targets — finishes with a
    /// report byte-identical to `run()`.
    #[test]
    fn arbitrary_split_points_match_one_shot_run(
        adv_idx in 0usize..4,
        timeline_idx in 0usize..4,
        eta in 0u64..7,
        seed in 1u64..500,
        splits in prop::collection::vec(0u64..(HORIZON + 4), 0..6),
        extra_steps in prop::collection::vec(any::<bool>(), 6),
    ) {
        let one_shot = SimBuilder::from_config(config(timeline_idx, eta, seed))
            .schedule(schedule(adv_idx))
            .adversary_boxed(adversary(adv_idx))
            .run();

        let mut sim = SimBuilder::from_config(config(timeline_idx, eta, seed))
            .schedule(schedule(adv_idx))
            .adversary_boxed(adversary(adv_idx))
            .build()
            .expect("valid sim");
        for (i, &split) in splits.iter().enumerate() {
            sim.run_until(Round::new(split));
            if extra_steps[i % extra_steps.len().max(1)] {
                sim.step();
            }
            // The cursor only moves forward, never past the horizon.
            if let Some(next) = sim.next_round() {
                prop_assert!(next.as_u64() <= HORIZON);
            }
        }
        while sim.step().is_some() {}
        prop_assert!(sim.is_done());
        prop_assert!(sim.next_round().is_none());
        let stepped = sim.finish();

        prop_assert_eq!(
            serde_json::to_string(&one_shot).expect("serialise"),
            serde_json::to_string(&stepped).expect("serialise"),
            "split schedule {:?} changed the report (adv {}, timeline {}, eta {})",
            splits, adv_idx, timeline_idx, eta
        );
    }
}
