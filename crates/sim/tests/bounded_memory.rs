//! Bounded-memory regression guard for long horizons.
//!
//! The runner is meant to sustain unbounded horizons at steady-state
//! memory: decision events are drained into the observer pipeline every
//! round (processes no longer accumulate an ever-growing
//! `Vec<DecisionEvent>`), the message pool compacts once every delivery
//! cursor passes a message, and the vote window expires old rounds.
//! This suite runs a horizon-10⁴ simulation and asserts every
//! memory-relevant store is bounded by a horizon-independent constant.

use st_sim::adversary::SilentAdversary;
use st_sim::{DecisionTap, Schedule, SimBuilder, SimConfig};
use st_types::Params;

const HORIZON: u64 = 10_000;

#[test]
fn horizon_10k_stores_stay_bounded() {
    let n = 6;
    let eta = 2;
    let params = Params::builder(n).expiration(eta).build().expect("valid");
    let (tap, log) = DecisionTap::new(n);
    let mut sim = SimBuilder::from_config(SimConfig::new(params, 7).horizon(HORIZON).txs_every(8))
        .schedule(Schedule::full(n, HORIZON))
        .adversary(SilentAdversary)
        .observer(tap)
        .build()
        .expect("valid simulation");
    while sim.step().is_some() {}

    // Decision events were drained into the observers each round, so no
    // process retains any — the store that used to grow ~1 event/round
    // per process now stays empty at every horizon.
    for p in sim.processes() {
        assert_eq!(
            p.decisions().len(),
            0,
            "undrained decision events on {:?}",
            p.id()
        );
        // The vote window holds a few rounds of votes per sender (the
        // [r−1−η, r−1] window plus pruning lag) — horizon-independent.
        // The bound is deliberately loose; the regression it guards is
        // O(horizon) growth, which would put ~10⁴ records here.
        assert!(
            p.votes().len() <= 20 * n,
            "vote window grew past its η-bound: {}",
            p.votes().len()
        );
    }

    // The pool backlog (messages not yet passed by every cursor) is a
    // few rounds of traffic, not the whole history. Full participation
    // under synchrony: every cursor passes a message one round after it
    // is sent, so the backlog is O(n) messages per outstanding round.
    let backlog = sim.network().pool().len();
    assert!(
        backlog <= 4 * n * n,
        "pool backlog {backlog} is not bounded (expected ≤ {})",
        4 * n * n
    );

    // And nothing was lost to the draining: the tap saw a decision
    // stream that kept pace with the horizon on every process.
    let report = sim.finish();
    assert!(report.is_safe());
    for (i, events) in log.borrow().iter().enumerate() {
        assert!(
            events.len() as u64 >= HORIZON / 2 - 2,
            "process {i} recorded only {} decisions over {HORIZON} rounds",
            events.len()
        );
    }
}
