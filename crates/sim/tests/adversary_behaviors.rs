//! Scenario tests: every adversary strategy against the configuration it
//! should and should not beat.

use st_sim::adversary::{
    BlackoutAdversary, EquivocatingVoter, JunkVoter, PartitionAttacker, ReorgAttacker,
    SilentAdversary, WithholdingLeader,
};
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig, Timeline};
use st_types::{Params, ProcessId, Round};

fn params(n: usize, eta: u64) -> Params {
    Params::builder(n).expiration(eta).build().unwrap()
}

/// Equivocating voters within the failure budget cannot break safety or
/// stall the chain under synchrony.
#[test]
fn equivocating_voter_is_harmless_within_budget() {
    let n = 12;
    let report = SimBuilder::from_config(SimConfig::new(params(n, 4), 3).horizon(40).txs_every(4))
        .schedule(Schedule::full(n, 40).with_static_byzantine(3))
        .adversary(EquivocatingVoter::new())
        .run();
    assert!(report.is_safe());
    assert!(
        report.final_decided_height > 12,
        "height {}",
        report.final_decided_height
    );
    assert!(report.tx_inclusion_rate() > 0.8);
}

/// Junk voters inflate perceived participation but stay below every
/// threshold within the budget: no effect on safety or liveness.
#[test]
fn junk_voter_within_budget_no_effect() {
    let n = 12;
    let clean = SimBuilder::from_config(SimConfig::new(params(n, 2), 9).horizon(40))
        .schedule(Schedule::full(n, 40).with_static_byzantine(3))
        .adversary(SilentAdversary)
        .run();
    let junk = SimBuilder::from_config(SimConfig::new(params(n, 2), 9).horizon(40))
        .schedule(Schedule::full(n, 40).with_static_byzantine(3))
        .adversary(JunkVoter::new())
        .run();
    assert!(junk.is_safe());
    assert_eq!(
        clean.final_decided_height, junk.final_decided_height,
        "junk votes below threshold changed chain growth"
    );
}

/// The withholding leader never endangers safety — it is a pure liveness
/// nuisance (its block is simply decided one view late).
#[test]
fn withholding_leader_is_liveness_only() {
    let n = 12;
    let report = SimBuilder::from_config(SimConfig::new(params(n, 2), 11).horizon(60).txs_every(4))
        .schedule(Schedule::full(n, 60).with_static_byzantine(4))
        .adversary(WithholdingLeader::new())
        .run();
    assert!(report.is_safe());
    assert!(report.tx_inclusion_rate() > 0.8);
}

/// A growing adversary corrupting processes mid-run (outside any
/// asynchronous window) cannot break safety while within the budget:
/// corrupted processes simply go silent (worst case for progress).
#[test]
fn growing_adversary_within_budget_is_safe() {
    let n = 12;
    let schedule = Schedule::full(n, 50)
        .with_corrupted(ProcessId::new(9), Round::new(10))
        .with_corrupted(ProcessId::new(10), Round::new(20))
        .with_corrupted(ProcessId::new(11), Round::new(30));
    let report = SimBuilder::from_config(SimConfig::new(params(n, 4), 13).horizon(50).txs_every(4))
        .schedule(schedule)
        .adversary(SilentAdversary)
        .run();
    assert!(report.is_safe());
    assert!(report.final_decided_height > 15);
}

/// Corrupting a process *during* the window and using it for the reorg
/// attack: the growing adversary gains nothing extra while Eq. 4 holds.
#[test]
fn reorg_with_growing_corruption_still_fails_for_small_pi() {
    let n = 16;
    let schedule = Schedule::full(n, 44)
        .with_static_byzantine(3)
        // A fourth process falls at the window edge; Eq. 4 still holds
        // (12 of 16 survivors > 2/3).
        .with_corrupted(ProcessId::new(12), Round::new(14));
    let report = SimBuilder::from_config(
        SimConfig::new(params(n, 5), 3)
            .horizon(44)
            .async_window(AsyncWindow::new(Round::new(14), 2)),
    )
    .schedule(schedule)
    .adversary(ReorgAttacker::new())
    .run();
    assert!(
        report.is_asynchrony_resilient(),
        "{:?}",
        report.resilience_violations
    );
    assert!(report.is_safe());
}

/// A blackout window immediately followed by heavy churn: safety must
/// survive the combination.
#[test]
fn blackout_then_mass_sleep_is_safe() {
    let n = 12;
    let mut awake = vec![vec![true; n]; 51];
    // Rounds 18..=30: 5 processes sleep right after the window ends.
    for r in 18..=30 {
        for p in 7..12 {
            awake[r][p] = false;
        }
    }
    let schedule = Schedule::custom(awake);
    let report = SimBuilder::from_config(
        SimConfig::new(params(n, 5), 21)
            .horizon(50)
            .async_window(AsyncWindow::new(Round::new(12), 3))
            .txs_every(5),
    )
    .schedule(schedule)
    .adversary(BlackoutAdversary)
    .run();
    assert!(report.is_safe());
    assert!(report.is_asynchrony_resilient());
    assert!(report.final_decided_height > 10);
}

/// The partition attacker does nothing when no round is asynchronous —
/// its power comes entirely from the delivery oracle.
#[test]
fn partition_attacker_powerless_under_synchrony() {
    let n = 8;
    let report = SimBuilder::from_config(SimConfig::new(params(n, 0), 5).horizon(30).txs_every(4))
        .schedule(Schedule::full(n, 30))
        .adversary(PartitionAttacker::new())
        .run();
    assert!(report.is_safe());
    assert!(report.tx_inclusion_rate() > 0.8);
}

/// Regression for the one-shot `async_start` latch the attackers used to
/// carry: with two asynchronous windows, the blackout prefix must re-arm
/// at the start of the **second** window. Under the latched behaviour the
/// second window skipped its blackout (the offset kept counting from
/// window 1), so the partition play ran from the window's first round and
/// the halves kept deciding; with the window-relative offset the first
/// `b` rounds of each window deliver nothing and decisions stall.
#[test]
fn partition_blackout_rearms_on_second_window() {
    let n = 8;
    let b = 3u64;
    let (w1, w2) = (Round::new(10), Round::new(26));
    let timeline = Timeline::synchronous()
        .asynchronous(w1, b + 4)
        .asynchronous(w2, b + 4);
    let report = SimBuilder::from_config(
        SimConfig::new(params(n, 0), 5)
            .horizon(40)
            .timeline(timeline),
    )
    .schedule(Schedule::full(n, 40))
    .adversary(PartitionAttacker::with_blackout(b))
    .run();
    // The attack lands in window 1 (sanity: the strategy works at all).
    assert!(!report.safety_violations.is_empty());
    // Blackout re-armed: the receive phases of the first `b` rounds of
    // window 2 deliver *nothing* — under the latched bug the offset kept
    // counting from window 1, so same-half partition traffic flowed from
    // the window's first round.
    for r in w2.as_u64()..w2.as_u64() + b {
        assert_eq!(
            report
                .timeline
                .at(Round::new(r))
                .unwrap()
                .messages_delivered,
            0,
            "second blackout did not re-arm (round {r} delivered messages)"
        );
    }
    // And the second attack actually fires after its blackout: partition
    // delivery resumes, and the halves fork again into a fresh
    // conflicting pair decided after the blackout.
    assert!(
        report
            .timeline
            .at(Round::new(w2.as_u64() + b))
            .unwrap()
            .messages_delivered
            > 0,
        "partition play never resumed in window 2"
    );
    assert!(
        report.safety_violations.iter().any(|v| {
            v.first.1.round > Round::new(w2.as_u64() + b)
                && v.second.1.round > Round::new(w2.as_u64() + b)
        }),
        "second partition play never fired: {:?}",
        report.safety_violations
    );
}

/// The same re-arm regression for [`ReorgAttacker`]: its blackout prefix
/// (and thus the vote-expiry setup the attack depends on) must replay in
/// every window.
#[test]
fn reorg_blackout_rearms_on_second_window() {
    let n = 10;
    let b = 2u64;
    let (w1, w2) = (Round::new(10), Round::new(24));
    let timeline = Timeline::synchronous()
        .asynchronous(w1, b + 2)
        .asynchronous(w2, b + 2);
    let report = SimBuilder::from_config(
        SimConfig::new(params(n, 0), 5)
            .horizon(36)
            .timeline(timeline),
    )
    .schedule(Schedule::full(n, 36).with_static_byzantine(3))
    .adversary(ReorgAttacker::with_blackout(b))
    .run();
    // Sanity: the reorg lands (vanilla MMR, f = 3 ≥ 3).
    assert!(!report.resilience_violations.is_empty());
    // Window 2's first `b` rounds are a real blackout again: nothing is
    // delivered to honest receivers until the prefix elapses.
    for r in w2.as_u64()..w2.as_u64() + b {
        assert_eq!(
            report
                .timeline
                .at(Round::new(r))
                .unwrap()
                .messages_delivered,
            0,
            "second blackout did not re-arm (round {r} delivered messages)"
        );
    }
    assert!(
        report
            .timeline
            .at(Round::new(w2.as_u64() + b))
            .unwrap()
            .messages_delivered
            > 0,
        "reorg delivery never resumed in window 2"
    );
}

/// Determinism extends to adversarial runs: same seed, same attack, same
/// violations.
#[test]
fn adversarial_runs_are_deterministic() {
    let run = || {
        SimBuilder::from_config(
            SimConfig::new(params(10, 0), 77)
                .horizon(26)
                .async_window(AsyncWindow::new(Round::new(10), 4)),
        )
        .schedule(Schedule::full(10, 26))
        .adversary(PartitionAttacker::new())
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.safety_violations.len(), b.safety_violations.len());
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.final_decided_height, b.final_decided_height);
}
