//! Determinism-equivalence guard for the shared-envelope fast path.
//!
//! The fast path changes *how much work* delivery does (one pool
//! allocation per multicast, one signature verification per unique
//! envelope, pool compaction) but must not change a single observable
//! bit: for every (adversary, schedule, η, π) grid point, the run with
//! shared delivery must produce a `SimReport` that serialises
//! byte-identically to the naive mode (per-receiver deep clone +
//! re-verification, no compaction) — the faithful model of the
//! pre-refactor behaviour.

use st_sim::adversary::{
    Adversary, BlackoutAdversary, EquivocatingVoter, PartitionAttacker, ReorgAttacker,
    SilentAdversary,
};
use st_sim::{AsyncWindow, ChurnOptions, Schedule, SimBuilder, SimConfig, Simulation, Timeline};
use st_types::{Params, ProcessId, Round};

fn params(n: usize, eta: u64) -> Params {
    Params::builder(n).expiration(eta).build().unwrap()
}

fn adversary(name: &str) -> Box<dyn Adversary> {
    match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        "reorg" => Box::new(ReorgAttacker::new()),
        "equivocator" => Box::new(EquivocatingVoter::new()),
        other => panic!("unknown adversary {other}"),
    }
}

fn schedule(name: &str, n: usize, horizon: u64) -> Schedule {
    match name {
        "full" => Schedule::full(n, horizon),
        "mass-sleep" => Schedule::mass_sleep(n, horizon, 0.5, 6, 12),
        "churn" => Schedule::random_churn(n, horizon, 0.05, 42, &ChurnOptions::default()),
        "static-byz" => Schedule::full(n, horizon).with_static_byzantine(3),
        "byz-window" => Schedule::full(n, horizon).with_corrupted_window(
            ProcessId::new(1),
            Round::new(6),
            Round::new(14),
        ),
        other => panic!("unknown schedule {other}"),
    }
}

/// Runs one grid point in both modes and asserts byte-identical reports.
fn assert_equivalent(adv: &str, sched: &str, n: usize, eta: u64, pi: Option<u64>, seed: u64) {
    let horizon = 24;
    let mut config = SimConfig::new(params(n, eta), seed)
        .horizon(horizon)
        .txs_every(4);
    if let Some(pi) = pi {
        config = config.async_window(AsyncWindow::new(Round::new(10), pi));
    }
    let fast = SimBuilder::from_config(config.clone())
        .schedule(schedule(sched, n, horizon))
        .adversary_boxed(adversary(adv))
        .run();
    let naive = SimBuilder::from_config(config.naive_delivery())
        .schedule(schedule(sched, n, horizon))
        .adversary_boxed(adversary(adv))
        .run();
    let fast_json = serde_json::to_string(&fast).expect("serialise fast report");
    let naive_json = serde_json::to_string(&naive).expect("serialise naive report");
    assert_eq!(
        fast_json, naive_json,
        "fast path diverged from naive delivery for adversary={adv} schedule={sched} eta={eta} pi={pi:?} seed={seed}"
    );
}

#[test]
fn synchronous_grid_is_equivalent() {
    for &(sched, eta, seed) in &[
        ("full", 0, 1),
        ("full", 2, 2),
        ("full", 4, 3),
        ("mass-sleep", 2, 4),
        ("churn", 2, 5),
        ("byz-window", 2, 6),
    ] {
        assert_equivalent("silent", sched, 10, eta, None, seed);
    }
}

#[test]
fn asynchronous_grid_is_equivalent() {
    for &(adv, sched, eta, pi, seed) in &[
        ("blackout", "full", 4, 3, 7),
        ("partition", "full", 0, 4, 8),
        ("partition", "full", 6, 4, 9),
        ("reorg", "static-byz", 0, 1, 10),
        ("reorg", "static-byz", 4, 1, 11),
        ("equivocator", "static-byz", 2, 2, 12),
        ("silent", "mass-sleep", 2, 3, 13),
        ("blackout", "churn", 4, 2, 14),
    ] {
        assert_equivalent(adv, sched, 10, eta, Some(pi), seed);
    }
}

/// A timeline grid point in both modes: fast vs naive must stay
/// byte-identical through multi-window asynchrony, bounded-delay
/// segments (whose forced-deadline cursor advance interacts with
/// compaction — exactly what naive mode never does) and partitions.
fn assert_equivalent_timeline(adv: &str, sched: &str, n: usize, eta: u64, t: &Timeline, seed: u64) {
    let horizon = 34;
    let config = SimConfig::new(params(n, eta), seed)
        .horizon(horizon)
        .txs_every(4)
        .timeline(t.clone());
    let fast = SimBuilder::from_config(config.clone())
        .schedule(schedule(sched, n, horizon))
        .adversary_boxed(adversary(adv))
        .run();
    let naive = SimBuilder::from_config(config.naive_delivery())
        .schedule(schedule(sched, n, horizon))
        .adversary_boxed(adversary(adv))
        .run();
    let fast_json = serde_json::to_string(&fast).expect("serialise fast report");
    let naive_json = serde_json::to_string(&naive).expect("serialise naive report");
    assert_eq!(
        fast_json, naive_json,
        "fast path diverged from naive delivery for adversary={adv} schedule={sched} eta={eta} timeline={t:?} seed={seed}"
    );
}

#[test]
fn timeline_grid_is_equivalent() {
    let evens: Vec<ProcessId> = ProcessId::all(10).filter(|p| p.index() % 2 == 0).collect();
    let multi_async = Timeline::synchronous()
        .asynchronous(Round::new(10), 3)
        .asynchronous(Round::new(20), 3);
    let bounded = Timeline::synchronous().bounded_delay(Round::new(8), 12, 2);
    let gst_like = Timeline::synchronous().bounded_delay(Round::new(1), 16, 3);
    let partition = Timeline::synchronous().partition(Round::new(12), 4, vec![evens.clone()]);
    let mixed = Timeline::synchronous()
        .asynchronous(Round::new(10), 2)
        .bounded_delay(Round::new(18), 4, 1)
        .partition(Round::new(26), 3, vec![evens]);
    for (adv, sched, eta, t, seed) in [
        ("partition", "full", 6, &multi_async, 21),
        ("blackout", "full", 4, &multi_async, 22),
        ("silent", "full", 4, &bounded, 23),
        ("silent", "churn", 4, &gst_like, 24),
        ("silent", "full", 6, &partition, 25),
        ("reorg", "static-byz", 4, &mixed, 26),
        ("silent", "mass-sleep", 2, &mixed, 27),
    ] {
        assert_equivalent_timeline(adv, sched, 10, eta, t, seed);
    }
}

/// The `async_window(w)` shim must stay a *pure* alias for the
/// one-segment timeline: both spellings produce byte-identical reports.
#[test]
fn single_async_segment_timeline_matches_legacy_async_window() {
    for &(adv, eta, pi, seed) in &[
        ("partition", 0u64, 4u64, 31u64),
        ("partition", 6, 4, 32),
        ("blackout", 4, 3, 33),
    ] {
        let horizon = 26;
        let legacy = SimConfig::new(params(10, eta), seed)
            .horizon(horizon)
            .txs_every(4)
            .async_window(AsyncWindow::new(Round::new(10), pi));
        let timeline = SimConfig::new(params(10, eta), seed)
            .horizon(horizon)
            .txs_every(4)
            .timeline(Timeline::synchronous().asynchronous(Round::new(10), pi));
        let a = SimBuilder::from_config(legacy)
            .schedule(schedule("full", 10, horizon))
            .adversary_boxed(adversary(adv))
            .run();
        let b = SimBuilder::from_config(timeline)
            .schedule(schedule("full", 10, horizon))
            .adversary_boxed(adversary(adv))
            .run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "async_window shim diverged from explicit timeline (adv={adv} eta={eta} pi={pi})"
        );
    }
}

/// An explicitly all-synchronous timeline is the same run as the seed's
/// window-less configuration.
#[test]
fn all_synchronous_timeline_matches_seed_sync_run() {
    for sched in ["full", "mass-sleep", "churn", "byz-window"] {
        let horizon = 24;
        let seed_cfg = SimConfig::new(params(10, 2), 41)
            .horizon(horizon)
            .txs_every(4);
        let explicit = seed_cfg.clone().timeline(Timeline::synchronous());
        let a = SimBuilder::from_config(seed_cfg)
            .schedule(schedule(sched, 10, horizon))
            .adversary_boxed(adversary("silent"))
            .run();
        let b = SimBuilder::from_config(explicit)
            .schedule(schedule(sched, 10, horizon))
            .adversary_boxed(adversary("silent"))
            .run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "explicit synchronous timeline diverged from the default ({sched})"
        );
    }
}

// ---------------------------------------------------------------------------
// API-redesign guards: the event-driven runner must not change a byte.
// ---------------------------------------------------------------------------

/// A user observer that counts everything it sees (including per-envelope
/// delivery events, which force the runner off the closure-based delivery
/// fast path and onto the event-generating one).
#[derive(Default)]
struct CountingProbe {
    events: usize,
    deliveries: usize,
}

impl st_sim::Observer for CountingProbe {
    fn name(&self) -> &str {
        "counting-probe"
    }

    fn wants_delivery_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, _ctx: &st_sim::ObsCtx<'_>, event: &st_sim::SimEvent) {
        self.events += 1;
        if matches!(event, st_sim::SimEvent::EnvelopeDelivered { .. }) {
            self.deliveries += 1;
        }
    }
}

/// The grid the new-API guards run over: a representative slice of the
/// (adversary × schedule × η × timeline) space.
fn guard_grid() -> Vec<(&'static str, &'static str, u64, Option<Timeline>, u64)> {
    let multi = Timeline::synchronous()
        .asynchronous(Round::new(10), 3)
        .asynchronous(Round::new(20), 3);
    let bounded = Timeline::synchronous().bounded_delay(Round::new(8), 8, 2);
    vec![
        ("silent", "full", 2, None, 51),
        ("silent", "churn", 2, None, 52),
        ("partition", "full", 0, Some(multi.clone()), 53),
        ("partition", "full", 6, Some(multi), 54),
        ("blackout", "mass-sleep", 4, Some(bounded.clone()), 55),
        ("reorg", "static-byz", 4, Some(bounded), 56),
        ("equivocator", "byz-window", 2, None, 57),
    ]
}

fn guard_config(eta: u64, t: &Option<Timeline>, seed: u64) -> SimConfig {
    let mut config = SimConfig::new(params(10, eta), seed)
        .horizon(28)
        .txs_every(4);
    if let Some(t) = t {
        config = config.timeline(t.clone());
    }
    config
}

/// **Step-vs-run equivalence**: driving the simulation with an arbitrary
/// mix of `step()` / `run_until()` calls, then `finish()`, must produce a
/// report byte-identical to the one-shot `run()`.
#[test]
fn stepped_run_is_byte_identical_to_one_shot_run() {
    for (adv, sched, eta, t, seed) in guard_grid() {
        let config = guard_config(eta, &t, seed);
        let one_shot = SimBuilder::from_config(config.clone())
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        let mut stepped = SimBuilder::from_config(config)
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .build()
            .expect("valid sim");
        stepped.step();
        stepped.run_until(Round::new(9));
        stepped.step();
        stepped.run_until(Round::new(7)); // no-op: already past
        stepped.run_until(Round::new(21));
        while stepped.step().is_some() {}
        assert!(stepped.is_done());
        let stepped = stepped.finish();
        assert_eq!(
            serde_json::to_string(&one_shot).unwrap(),
            serde_json::to_string(&stepped).unwrap(),
            "step()/run_until() diverged from run() for adversary={adv} schedule={sched} eta={eta}"
        );
    }
}

/// **Observer-vs-seed equivalence**: registering a user observer — even
/// one that opts into per-envelope delivery events, forcing the
/// event-generating delivery path — must not change a single report byte
/// relative to the observer-less run (the seed behaviour).
#[test]
fn user_observers_do_not_change_the_report() {
    for (adv, sched, eta, t, seed) in guard_grid() {
        let config = guard_config(eta, &t, seed);
        let bare = SimBuilder::from_config(config.clone())
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        let observed = SimBuilder::from_config(config)
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .observer(CountingProbe::default())
            .run();
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&observed).unwrap(),
            "a passive user observer changed the report for adversary={adv} schedule={sched} eta={eta}"
        );
    }
}

/// **Generic-runner equivalence**: `Simulation` / `SimBuilder` are now
/// generic over the protocol with `TobProcess` as the default. Naming
/// the protocol explicitly (`SimBuilder::<TobProcess>::for_protocol`,
/// the path every non-default protocol takes through the runner) must
/// be byte-identical to the defaulted alias every pre-existing caller
/// uses — i.e. the genericization added no observable behaviour. Runs
/// over the full (adversary × schedule × η × timeline) guard grid, in
/// both delivery modes.
#[test]
fn explicit_protocol_parameterisation_matches_defaulted_alias() {
    use st_core::TobProcess;
    for (adv, sched, eta, t, seed) in guard_grid() {
        for naive in [false, true] {
            let mut config = guard_config(eta, &t, seed);
            if naive {
                config = config.naive_delivery();
            }
            let defaulted = SimBuilder::from_config(config.clone())
                .schedule(schedule(sched, 10, 28))
                .adversary_boxed(adversary(adv))
                .run();
            let explicit = SimBuilder::<TobProcess>::for_protocol_config(config)
                .schedule(schedule(sched, 10, 28))
                .adversary_boxed(adversary(adv))
                .run();
            assert_eq!(
                serde_json::to_string(&defaulted).unwrap(),
                serde_json::to_string(&explicit).unwrap(),
                "generic runner diverged from the defaulted alias for \
                 adversary={adv} schedule={sched} eta={eta} naive={naive}"
            );
        }
    }
}

/// **Shared-vs-unshared tally equivalence**: the once-per-round shared
/// tally (cohort certification + one `GaOutput` per cohort, handed to
/// members as a shared handle) must not change a single report byte
/// relative to every process recomputing its own tally. Runs over the
/// same guard grid as the API guards — churn, corruption windows,
/// partitions, multi-window asynchrony and bounded delay all fragment
/// or disable cohorts, so both the sharing and the fallback paths are
/// exercised.
#[test]
fn shared_tally_is_byte_identical_to_unshared() {
    for (adv, sched, eta, t, seed) in guard_grid() {
        let config = guard_config(eta, &t, seed);
        let shared = SimBuilder::from_config(config.clone())
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        let unshared = SimBuilder::from_config(config.unshared_tally())
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        assert_eq!(
            serde_json::to_string(&shared).unwrap(),
            serde_json::to_string(&unshared).unwrap(),
            "shared tally diverged from per-process recomputation for \
             adversary={adv} schedule={sched} eta={eta}"
        );
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// **Cohort-split property**: random churn (mid-window sleep/wake
    /// fragments the awake-history fingerprints), a randomly placed
    /// corruption window (flipping a process Byzantine and back trips the
    /// sticky `ever_byz` exclusion) and a randomly placed asynchronous
    /// window (rounds where the cohort pass is disabled entirely and
    /// every process falls back to its incremental tally) — under every
    /// such fragmentation the shared-tally run must stay byte-identical
    /// to the unshared run, i.e. the cache never serves a stale or
    /// wrong-cohort tally.
    #[test]
    fn cohort_splits_never_serve_a_stale_tally(
        n in 6usize..12,
        eta in 0u64..6,
        seed in 0u64..500,
        churn_seed in 0u64..500,
        corrupt_target in 0usize..6,
        corrupt_from in 4u64..12,
        corrupt_len in 1u64..6,
        async_from in 8u64..18,
        async_len in 1u64..4,
    ) {
        let horizon = 30;
        let sched = Schedule::random_churn(n, horizon, 0.15, churn_seed, &ChurnOptions::default())
            .with_corrupted_window(
                ProcessId::new((corrupt_target % n) as u32),
                Round::new(corrupt_from),
                Round::new(corrupt_from + corrupt_len),
            );
        let timeline = Timeline::synchronous().asynchronous(Round::new(async_from), async_len);
        let config = SimConfig::new(params(n, eta), seed)
            .horizon(horizon)
            .txs_every(3)
            .timeline(timeline);
        let shared = SimBuilder::from_config(config.clone())
            .schedule(sched.clone())
            .adversary_boxed(adversary("equivocator"))
            .run();
        let unshared = SimBuilder::from_config(config.unshared_tally())
            .schedule(sched)
            .adversary_boxed(adversary("equivocator"))
            .run();
        proptest::prop_assert_eq!(
            serde_json::to_string(&shared).unwrap(),
            serde_json::to_string(&unshared).unwrap(),
            "shared tally diverged under cohort splits: n={} eta={} seed={} churn_seed={} \
             corrupt=({},{},{}) async=({},{})",
            n, eta, seed, churn_seed, corrupt_target, corrupt_from, corrupt_len,
            async_from, async_len
        );
    }
}

/// **txs_every-vs-workload equivalence**: the legacy `txs_every(k)` knob
/// is now a `ConstantRate` shim through the workload injector; spelling
/// the same traffic as an explicit open-loop workload
/// (`ConstantRate::every(k)` with unbounded admission and batch) must
/// produce a byte-identical report on every guard-grid cell. The grid's
/// schedules all keep at least one honest process awake every round, so
/// the shim's drop-when-asleep special case is unreachable and the two
/// spellings coincide exactly — legacy reports stay stable down to the
/// serialized byte.
#[test]
fn txs_every_matches_explicit_constant_rate_workload() {
    use st_sim::{ConstantRate, WorkloadSpec};
    for (adv, sched, eta, t, seed) in guard_grid() {
        let legacy = SimBuilder::from_config(guard_config(eta, &t, seed))
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        // Same config minus txs_every, with the equivalent workload.
        let mut config = SimConfig::new(params(10, eta), seed).horizon(28);
        if let Some(t) = &t {
            config = config.timeline(t.clone());
        }
        let explicit = SimBuilder::from_config(config)
            .workload_spec(
                WorkloadSpec::new(ConstantRate::every(4))
                    .capacity(usize::MAX)
                    .batch(usize::MAX),
            )
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&explicit).unwrap(),
            "txs_every shim diverged from the explicit ConstantRate workload for \
             adversary={adv} schedule={sched} eta={eta}"
        );
    }
}

/// **Builder-vs-legacy-shim equivalence**: the deprecated positional
/// constructor and the builder assemble the same simulation.
#[test]
fn builder_matches_legacy_constructor() {
    for (adv, sched, eta, t, seed) in guard_grid() {
        let config = guard_config(eta, &t, seed);
        #[allow(deprecated)]
        let legacy = Simulation::new(config.clone(), schedule(sched, 10, 28), adversary(adv)).run();
        let built = SimBuilder::from_config(config)
            .schedule(schedule(sched, 10, 28))
            .adversary_boxed(adversary(adv))
            .run();
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&built).unwrap(),
            "SimBuilder diverged from Simulation::new for adversary={adv} schedule={sched} eta={eta}"
        );
    }
}
