//! Behavioural tests of the event-driven driving API: the `SimEvent`
//! stream an [`Observer`] sees, the delivery-event opt-in gate, and
//! mid-run interventions through the stepping surface.

use std::cell::RefCell;
use std::rc::Rc;

use st_sim::adversary::{PartitionAttacker, SilentAdversary};
use st_sim::{ObsCtx, Observer, Schedule, SimBuilder, SimEvent, Timeline, ViolationKind};
use st_types::{Params, ProcessId, Round};

fn params(n: usize, eta: u64) -> Params {
    Params::builder(n).expiration(eta).build().unwrap()
}

/// Shared tally of everything a probe saw.
#[derive(Default, Debug)]
struct Seen {
    round_starts: usize,
    round_ends: usize,
    txs: usize,
    corruption_changes: Vec<(u64, usize)>,
    window_enters: Vec<(usize, u64)>,
    window_exits: Vec<(usize, u64)>,
    decisions: usize,
    deliveries: usize,
    safety_violations: usize,
    resilience_violations: usize,
}

struct Probe {
    seen: Rc<RefCell<Seen>>,
    want_deliveries: bool,
}

impl Observer for Probe {
    fn name(&self) -> &str {
        "probe"
    }

    fn wants_delivery_events(&self) -> bool {
        self.want_deliveries
    }

    fn on_event(&mut self, _ctx: &ObsCtx<'_>, event: &SimEvent) {
        let mut seen = self.seen.borrow_mut();
        match event {
            SimEvent::RoundStart { .. } => seen.round_starts += 1,
            SimEvent::RoundEnd { .. } => seen.round_ends += 1,
            SimEvent::TxSubmitted { .. } => seen.txs += 1,
            SimEvent::CorruptionChange { round, corrupted } => seen
                .corruption_changes
                .push((round.as_u64(), corrupted.len())),
            SimEvent::WindowEnter { index, disruption } => {
                seen.window_enters.push((*index, disruption.start.as_u64()))
            }
            SimEvent::WindowExit { index, disruption } => {
                seen.window_exits.push((*index, disruption.end.as_u64()))
            }
            SimEvent::DecisionObserved { .. } => seen.decisions += 1,
            SimEvent::EnvelopeDelivered { .. } => seen.deliveries += 1,
            SimEvent::Violation { kind, .. } => match kind {
                ViolationKind::Safety => seen.safety_violations += 1,
                ViolationKind::Resilience { .. } => seen.resilience_violations += 1,
            },
        }
    }
}

/// The stream narrates the whole run: one start/end pair per round,
/// window enter/exit per disruption, tx submissions, decisions, and —
/// only with the opt-in — per-envelope deliveries.
#[test]
fn event_stream_narrates_the_run() {
    let horizon = 30u64;
    let seen = Rc::new(RefCell::new(Seen::default()));
    let timeline = Timeline::synchronous()
        .asynchronous(Round::new(10), 3)
        .bounded_delay(Round::new(20), 4, 2);
    let report = SimBuilder::new(params(8, 4), 5)
        .horizon(horizon)
        .timeline(timeline)
        .txs_every(5)
        .observer(Probe {
            seen: seen.clone(),
            want_deliveries: true,
        })
        .build()
        .expect("valid sim")
        .run();
    let seen = seen.borrow();
    assert_eq!(seen.round_starts as u64, horizon + 1);
    assert_eq!(seen.round_ends as u64, horizon + 1);
    assert_eq!(seen.window_enters, vec![(0, 10), (1, 20)]);
    assert_eq!(seen.window_exits, vec![(0, 12), (1, 23)]);
    assert_eq!(seen.txs, report.txs.len());
    assert_eq!(seen.decisions, report.decisions_total);
    // Every honest delivery of the trace was narrated.
    let delivered: usize = report
        .timeline
        .samples()
        .iter()
        .map(|s| s.messages_delivered)
        .sum();
    assert_eq!(seen.deliveries, delivered);
    assert!(seen.deliveries > 0);
    assert_eq!(seen.safety_violations, 0);
}

/// Without the opt-in, no delivery events are generated (the zero-copy
/// fast path is kept), while every other event still flows.
#[test]
fn delivery_events_are_opt_in() {
    let seen = Rc::new(RefCell::new(Seen::default()));
    SimBuilder::new(params(8, 2), 5)
        .horizon(20)
        .observer(Probe {
            seen: seen.clone(),
            want_deliveries: false,
        })
        .build()
        .expect("valid sim")
        .run();
    let seen = seen.borrow();
    assert_eq!(seen.deliveries, 0);
    assert_eq!(seen.round_starts, 21);
    assert!(seen.decisions > 0);
}

/// Monitors publish their findings onto the stream: a user probe sees
/// each safety violation the partition attack produces, as an event, and
/// the count matches the report.
#[test]
fn violation_events_reach_user_observers() {
    let seen = Rc::new(RefCell::new(Seen::default()));
    let report = SimBuilder::new(params(8, 0), 5)
        .horizon(22)
        .timeline(Timeline::synchronous().asynchronous(Round::new(10), 4))
        .adversary(PartitionAttacker::new())
        .observer(Probe {
            seen: seen.clone(),
            want_deliveries: false,
        })
        .build()
        .expect("valid sim")
        .run();
    assert!(!report.is_safe(), "the Section-1 attack should land");
    let seen = seen.borrow();
    assert_eq!(seen.safety_violations, report.safety_violations.len());
}

/// Corruption changes are narrated with the new set when `B_r` shifts.
#[test]
fn corruption_changes_are_narrated() {
    let seen = Rc::new(RefCell::new(Seen::default()));
    let schedule = Schedule::full(8, 20).with_corrupted_window(
        ProcessId::new(2),
        Round::new(5),
        Round::new(11),
    );
    SimBuilder::new(params(8, 2), 3)
        .horizon(20)
        .schedule(schedule)
        .observer(Probe {
            seen: seen.clone(),
            want_deliveries: false,
        })
        .build()
        .expect("valid sim")
        .run();
    let seen = seen.borrow();
    // One change when p2 falls (round 5, |B| = 1), one when it heals
    // (round 11, |B| = 0).
    assert_eq!(seen.corruption_changes, vec![(5, 1), (11, 0)]);
}

/// The mid-run intervention the redesign makes first-class: pause with
/// `run_until`, inspect, flip the schedule, keep stepping. Here a probe
/// run is paused at round 9 and five processes are put to sleep for ten
/// rounds — the protocol keeps deciding (dynamic availability), and the
/// trace shows the flipped participation.
#[test]
fn mid_run_schedule_flip_through_stepping() {
    let n = 12;
    let horizon = 40u64;
    let mut sim = SimBuilder::new(params(n, 2), 7)
        .horizon(horizon)
        .adversary(SilentAdversary)
        .build()
        .expect("valid sim");
    sim.run_until(Round::new(9));
    assert_eq!(sim.next_round(), Some(Round::new(10)));
    // Inspect mid-run: every process is live and deciding.
    assert_eq!(sim.processes().len(), n);
    // Intervene: replace the schedule with one where 5 processes sleep
    // for rounds 12..=21 (the flip only affects rounds not yet run).
    *sim.schedule_mut() = Schedule::mass_sleep(n, horizon, 5.0 / n as f64, 12, 21);
    sim.run_until(Round::new(horizon));
    assert!(sim.is_done());
    let report = sim.finish();
    assert!(report.is_safe());
    assert!(report.decisions_total > 0);
    assert_eq!(report.rounds_run, horizon);
    // The flipped participation is visible in the trace...
    assert_eq!(report.timeline.at(Round::new(9)).unwrap().honest_awake, n);
    assert!(report.timeline.at(Round::new(15)).unwrap().honest_awake < n);
    // ...and the run healed after the cohort woke up.
    assert_eq!(report.timeline.at(Round::new(30)).unwrap().honest_awake, n);
}

/// Early finish reports the rounds actually executed.
#[test]
fn early_finish_reports_partial_run() {
    let mut sim = SimBuilder::new(params(8, 2), 3)
        .horizon(40)
        .build()
        .expect("valid sim");
    sim.run_until(Round::new(12));
    let report = sim.finish();
    assert_eq!(report.rounds_run, 12);
    assert_eq!(report.timeline.len(), 13); // rounds 0..=12 sampled
    assert!(report.is_safe());

    // Degenerate: finish before any step. `rounds_run` is 0 there too
    // (it reports the last executed round); the empty trace is the
    // documented disambiguator from "ran exactly round 0".
    let report = SimBuilder::new(params(8, 2), 3)
        .horizon(40)
        .build()
        .expect("valid sim")
        .finish();
    assert_eq!(report.rounds_run, 0);
    assert!(report.timeline.is_empty());
    assert_eq!(report.decisions_total, 0);
    assert_eq!(report.messages_sent, 0);
}

/// The observer pipeline is protocol-generic: a probe written against
/// `Observer<QuorumProcess>` rides the same event stream — and can read
/// quorum-process state out of `ObsCtx.processes` — while the built-in
/// monitors assemble the usual report.
#[test]
fn observers_ride_the_generic_runner() {
    use st_sim::{Protocol, QuorumProcess};

    #[derive(Default)]
    struct QuorumProbe {
        decisions: usize,
        max_seen_height: u64,
    }

    impl Observer<QuorumProcess> for QuorumProbe {
        fn name(&self) -> &str {
            "quorum-probe"
        }

        fn on_event(&mut self, ctx: &ObsCtx<'_, QuorumProcess>, event: &SimEvent) {
            if let SimEvent::DecisionObserved { .. } = event {
                self.decisions += 1;
            }
            if let SimEvent::RoundEnd { .. } = event {
                // Typed access to the driven protocol's state.
                let tallest = ctx
                    .processes
                    .iter()
                    .filter_map(|p| p.tree().height(p.decided_tip()))
                    .max()
                    .unwrap_or(0);
                self.max_seen_height = self.max_seen_height.max(tallest);
            }
        }
    }

    // Observers are moved into the pipeline; report state through the
    // assembled SimReport plus a shared cell for the probe's own tally.
    use std::cell::RefCell;
    use std::rc::Rc;
    let tally: Rc<RefCell<(usize, u64)>> = Rc::default();

    struct Sharing {
        inner: QuorumProbe,
        out: Rc<RefCell<(usize, u64)>>,
    }
    impl Observer<QuorumProcess> for Sharing {
        fn on_event(&mut self, ctx: &ObsCtx<'_, QuorumProcess>, event: &SimEvent) {
            self.inner.on_event(ctx, event);
            *self.out.borrow_mut() = (self.inner.decisions, self.inner.max_seen_height);
        }
    }

    let n = 9;
    let horizon = 20;
    let report = SimBuilder::<QuorumProcess>::for_protocol(Params::builder(n).build().unwrap(), 5)
        .horizon(horizon)
        .txs_every(4)
        .observer(Sharing {
            inner: QuorumProbe::default(),
            out: Rc::clone(&tally),
        })
        .build()
        .expect("valid quorum sim")
        .run();

    let (decisions, height) = *tally.borrow();
    // Full participation: views 1..=9 decide on all 9 processes.
    assert_eq!(decisions, 81);
    assert_eq!(report.decisions_total, 81);
    assert_eq!(height, 9);
    assert_eq!(report.final_decided_height, 9);
    assert!(report.is_safe());
}
