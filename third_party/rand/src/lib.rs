//! Minimal in-repo replacement for the `rand` crate.
//!
//! Provides the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random_range` / `random_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed on every platform, which the
//! simulator relies on for reproducible schedules and topologies.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Maps `self` onto `u64` for span arithmetic.
    fn to_u64(self) -> u64;
    /// Inverse of [`SampleUniform::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        // The casts are identities for u64 itself but conversions for
        // the macro's other instantiations.
        #[allow(trivial_numeric_casts)]
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "random_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (span + 1))
    }
}

/// Extension methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::RngExt;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn range_bounds_respected() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let x: u64 = rng.random_range(3..17);
                assert!((3..17).contains(&x));
                let y: usize = rng.random_range(0..=4);
                assert!(y <= 4);
            }
        }

        #[test]
        fn bool_probability_extremes() {
            let mut rng = StdRng::seed_from_u64(2);
            assert!(!(0..100).any(|_| rng.random_bool(0.0)));
            assert!((0..100).all(|_| rng.random_bool(1.0)));
        }
    }
}
