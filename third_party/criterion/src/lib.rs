//! Minimal in-repo replacement for the `criterion` benchmark harness.
//!
//! API-compatible with the subset this workspace's benches use:
//! `Criterion::{bench_function, benchmark_group, sample_size}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, sample_size,
//! finish}`, `Bencher::{iter, iter_batched}`, `BatchSize`, `BenchmarkId`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for
//! a fixed number of timed iterations and prints the mean wall-clock time
//! per iteration — enough to compare hot paths between commits without any
//! external dependencies.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Ignored by this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_one(label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if iterations > 0 {
        bencher.total / iterations as u32
    } else {
        Duration::ZERO
    };
    println!("bench: {label:<50} {per_iter:>12.2?}/iter ({iterations} iters)");
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates a `main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
