//! Derive macros for the in-repo `serde` replacement.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs and enums using only the standard `proc_macro` API
//! (no `syn`/`quote`, which are unavailable offline). The input item is
//! parsed structurally from its token stream; the generated impl is built
//! as a string and re-parsed.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple/newtype structs, and enums with unit, tuple,
//! and named-field variants. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Item {
    name: String,
    is_enum: bool,
    /// For structs: single entry keyed by the struct name.
    /// For enums: one entry per variant.
    variants: Vec<(String, Shape)>,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item {
                name: name.clone(),
                is_enum: false,
                variants: vec![(name, shape)],
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item {
                name,
                is_enum: true,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `field: Type, ...` returning the field names. Commas nested in
/// generic arguments (tracked via `<`/`>` depth) do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut expecting_name = true;
    let mut pending: Option<String> = None;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => i += 1, // attr body group skipped below
            TokenTree::Group(g) if expecting_name && g.delimiter() == Delimiter::Bracket => {}
            TokenTree::Ident(id) if expecting_name && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if expecting_name => pending = Some(id.to_string()),
            TokenTree::Punct(p) => match p.as_char() {
                ':' if depth == 0 && pending.is_some() => {
                    fields.push(pending.take().unwrap());
                    expecting_name = false;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => expecting_name = true,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut saw_token = false;
    let mut trailing_comma = false;
    for tt in stream {
        saw_token = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !saw_token {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut variants = Vec::new();
    let mut current: Option<(String, Shape)> = None;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // skip attr: '#' then [..] group
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if let Some(v) = current.take() {
                    variants.push(v);
                }
            }
            TokenTree::Ident(id) => current = Some((id.to_string(), Shape::Unit)),
            TokenTree::Group(g) if current.is_some() => {
                let shape = match g.delimiter() {
                    Delimiter::Parenthesis => Shape::Tuple(count_tuple_fields(g.stream())),
                    Delimiter::Brace => Shape::Named(parse_named_fields(g.stream())),
                    _ => Shape::Unit, // attribute bracket group — ignore
                };
                if !matches!(g.delimiter(), Delimiter::Bracket) {
                    current.as_mut().unwrap().1 = shape;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(v) = current.take() {
        variants.push(v);
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

fn string_lit(s: &str) -> String {
    format!("\"{s}\"")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let arms: Vec<String> = item
            .variants
            .iter()
            .map(|(vname, shape)| {
                let tag = string_lit(vname);
                match shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({tag})),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec::Vec::from([(::std::string::String::from({tag}), {S}(__f0))])),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds.iter().map(|b| format!("{S}({b})")).collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec::Vec::from([(::std::string::String::from({tag}), ::serde::Value::Seq(::std::vec::Vec::from([{}])))])),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| format!("(::std::string::String::from({}), {S}({f}))", string_lit(f)))
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec::Vec::from([(::std::string::String::from({tag}), ::serde::Value::Map(::std::vec::Vec::from([{}])))])),",
                            entries.join(", ")
                        )
                    }
                }
            })
            .collect();
        format!("match self {{ {} }}", arms.join(" "))
    } else {
        match &item.variants[0].1 {
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({}), {S}(&self.{f}))",
                            string_lit(f)
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Map(::std::vec::Vec::from([{}]))",
                    entries.join(", ")
                )
            }
            Shape::Tuple(1) => format!("{S}(&self.0)"),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n).map(|k| format!("{S}(&self.{k})")).collect();
                format!(
                    "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            }
            Shape::Unit => "::serde::Value::Null".to_string(),
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
            fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let ty_lit = string_lit(name);
    let body = if item.is_enum {
        let mut arms: Vec<String> = Vec::new();
        for (vname, shape) in &item.variants {
            let tag = string_lit(vname);
            match shape {
                Shape::Unit => arms.push(format!(
                    "::serde::Value::Str(__s) if __s == {tag} => ::std::result::Result::Ok({name}::{vname}),"
                )),
                Shape::Tuple(1) => arms.push(format!(
                    "::serde::Value::Map(__m) if __m.len() == 1 && __m[0].0 == {tag} => \
                     ::std::result::Result::Ok({name}::{vname}({D}(&__m[0].1)?)),"
                )),
                Shape::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|k| format!("{D}(&__seq[{k}])?")).collect();
                    arms.push(format!(
                        "::serde::Value::Map(__m) if __m.len() == 1 && __m[0].0 == {tag} => \
                         match &__m[0].1 {{ \
                            ::serde::Value::Seq(__seq) if __seq.len() == {n} => \
                                ::std::result::Result::Ok({name}::{vname}({})), \
                            _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant tuple\", {ty_lit})), \
                         }},",
                        items.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: {D}(::serde::map_get(__inner, {fl}).ok_or_else(|| ::serde::DeError::missing_field({ty_lit}, {fl}))?)?",
                                fl = string_lit(f)
                            )
                        })
                        .collect();
                    arms.push(format!(
                        "::serde::Value::Map(__m) if __m.len() == 1 && __m[0].0 == {tag} => \
                         match &__m[0].1 {{ \
                            ::serde::Value::Map(__inner) => ::std::result::Result::Ok({name}::{vname} {{ {} }}), \
                            _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant map\", {ty_lit})), \
                         }},",
                        inits.join(", ")
                    ));
                }
            }
        }
        arms.push(format!(
            "_ => ::std::result::Result::Err(::serde::DeError::expected(\"enum variant\", {ty_lit})),"
        ));
        format!("match __v {{ {} }}", arms.join(" "))
    } else {
        match &item.variants[0].1 {
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: {D}(::serde::map_get(__fields, {fl}).ok_or_else(|| ::serde::DeError::missing_field({ty_lit}, {fl}))?)?",
                            fl = string_lit(f)
                        )
                    })
                    .collect();
                format!(
                    "match __v {{ \
                        ::serde::Value::Map(__fields) => ::std::result::Result::Ok({name} {{ {} }}), \
                        _ => ::std::result::Result::Err(::serde::DeError::expected(\"map\", {ty_lit})), \
                     }}",
                    inits.join(", ")
                )
            }
            Shape::Tuple(1) => format!("::std::result::Result::Ok({name}({D}(__v)?))"),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n).map(|k| format!("{D}(&__seq[{k}])?")).collect();
                format!(
                    "match __v {{ \
                        ::serde::Value::Seq(__seq) if __seq.len() == {n} => \
                            ::std::result::Result::Ok({name}({})), \
                        _ => ::std::result::Result::Err(::serde::DeError::expected(\"sequence\", {ty_lit})), \
                     }}",
                    items.join(", ")
                )
            }
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
            fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
