//! Minimal in-repo replacement for `serde_json`.
//!
//! Serializes the in-repo `serde` [`Value`] model to JSON text and parses it
//! back. Covers `to_string` / `to_string_pretty` / `from_str`, which is the
//! surface this workspace uses.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes `value` as an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) -> Result<()> {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
            Ok(())
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn write_f64(x: f64, out: &mut String) -> Result<()> {
    if !x.is_finite() {
        return Err(Error("cannot serialize non-finite float".to_string()));
    }
    let s = x.to_string();
    out.push_str(&s);
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
