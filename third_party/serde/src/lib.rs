//! Minimal in-repo replacement for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the workspace uses: the `Serialize` / `Deserialize`
//! traits (plus their derive macros re-exported from `serde_derive`) over a
//! JSON-style [`Value`] data model. `serde_json` in this workspace
//! serializes [`Value`] trees to JSON text and parses them back.
//!
//! The derive macros follow real serde's JSON conventions so a future swap
//! to crates.io serde keeps the wire format: structs become maps, newtype
//! structs collapse to their inner value, unit enum variants become strings
//! and data-carrying variants become single-entry maps.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model produced by [`Serialize`] and consumed by
/// [`Deserialize`]. Mirrors the JSON data model, with integers kept exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered list of `(key, value)` entries.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Looks up `key` in a map's entry list (helper for derived code).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Missing struct field error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // The cast is an identity for u64 itself but widening for
                // the rest of the macro's instantiations.
                #[allow(trivial_numeric_casts)]
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Identity for i64 itself, widening for the other
                // instantiations.
                #[allow(trivial_numeric_casts)]
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t)))?,
                    Value::I64(n) => n,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::expected("fixed-length sequence", "array"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident / $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple sequence", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
