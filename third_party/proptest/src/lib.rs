//! Minimal in-repo replacement for the `proptest` crate.
//!
//! Covers the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * strategies: integer/float ranges, `any::<T>()`, tuples,
//!   `prop::collection::vec(strategy, size)`, [`Just`], and
//!   `prop::sample::Index`;
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: on failure the full input
//! bindings are printed. Generation is deterministic — the RNG is seeded
//! from the test's name — so failures reproduce exactly on re-run.

use std::fmt;
use std::ops::Range;

/// Per-test configuration. Only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated globally.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to produce test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (typically from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128;
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        // Identity cast for u64 itself, truncation/reinterpretation for
        // the macro's other instantiations.
        #[allow(trivial_numeric_casts)]
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
}

/// Collection size specification: an exact size or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<T>` (see [`prop::collection::vec`](collection::vec)).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// Strategy generating vectors of `element` with a size drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known collection length, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Projects the index onto a collection of length `len` (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Namespace mirror matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// FNV-1a hash of the test name, used as the deterministic RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: runs `case` until `cfg.cases` successes, panicking
/// on the first failure. `case` returns the failure plus a rendering of the
/// generated inputs.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut rng = TestRng::new(seed_from_name(name));
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut case_no = 0u64;
    while successes < cfg.cases {
        case_no += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err((TestCaseError::Reject(_), _)) => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejects} after {successes} successes)"
                    );
                }
            }
            Err((TestCaseError::Fail(msg), inputs)) => {
                panic!("proptest `{name}` failed at case #{case_no}: {msg}\n    inputs: {inputs}");
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current test case (without panicking) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current test case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Skips the current test case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                __result.map_err(|e| (e, __inputs))
            });
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}
